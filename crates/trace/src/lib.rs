//! # cppll-trace — structured tracing and metrics for the verification stack
//!
//! A zero-dependency (beyond [`cppll_json`]) observability layer: the
//! pipeline, SOS supervisor, and SDP solver emit hierarchical spans
//! (pipeline stage → SOS program → supervisor attempt → SDP solve),
//! per-iteration solver telemetry instants, and named counters into a
//! [`Tracer`]. Recording is strictly *read-only* with respect to the
//! numerics — events copy already-computed values — so enabling a trace
//! can never perturb a solve; bit-identical results across trace levels
//! hold by construction.
//!
//! Events land in per-thread lanes: each thread appends to its own buffer
//! behind an uncontended lock, so the parallel hot path never serialises
//! on a shared sink. Exporters drain every lane and merge by timestamp.
//!
//! Three export formats:
//! * [`Tracer::to_jsonl`] — one JSON object per event, bit-exact `f64`
//!   encoding via [`cppll_json`] (same encoder as the result digest);
//! * [`Tracer::to_chrome_trace`] — a Chrome `trace_event` JSON file,
//!   loadable in `about:tracing` / [Perfetto](https://ui.perfetto.dev);
//! * [`Tracer::to_prometheus`] — a Prometheus text-exposition metrics
//!   dump (counters plus per-span duration summaries).
//!
//! Tests consume traces through [`TraceRecorder`] and the
//! [`assert_span_tree!`] shape matcher, making traces a first-class
//! testable artifact.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use cppll_json::{ObjectBuilder, Value};

/// How much detail a [`Tracer`] records. Levels are cumulative: `Iter`
/// includes everything `Solve` records, and so on down to `Off`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum TraceLevel {
    /// Record nothing.
    #[default]
    Off,
    /// Pipeline-stage spans (lyapunov / levelset / advection / escape)
    /// and counters.
    Stage,
    /// Plus per-SOS-program, per-attempt, and per-SDP-solve spans.
    Solve,
    /// Plus one instant per interior-point iteration with the solver's
    /// numeric state (μ, residuals, step lengths, stage timings).
    Iter,
}

impl TraceLevel {
    /// Parses a CLI-style level name.
    pub fn parse(s: &str) -> Option<TraceLevel> {
        match s {
            "off" => Some(TraceLevel::Off),
            "stage" => Some(TraceLevel::Stage),
            "solve" => Some(TraceLevel::Solve),
            "iter" => Some(TraceLevel::Iter),
            _ => None,
        }
    }

    /// The canonical CLI name of this level.
    pub fn as_str(self) -> &'static str {
        match self {
            TraceLevel::Off => "off",
            TraceLevel::Stage => "stage",
            TraceLevel::Solve => "solve",
            TraceLevel::Iter => "iter",
        }
    }
}

/// A telemetry field value attached to an [`EventKind::Instant`].
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// A float, exported with bit-exact shortest-roundtrip encoding.
    F64(f64),
    /// An unsigned integer.
    U64(u64),
    /// A string.
    Str(String),
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// What an [`Event`] records.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A span opened.
    Begin {
        /// Tracer-unique span id.
        span: u64,
        /// Enclosing span on the same thread, if any.
        parent: Option<u64>,
        /// Static span name (e.g. `"sdp_solve"`).
        name: &'static str,
        /// Free-form label (e.g. `"m=120 blocks=4"`).
        label: String,
    },
    /// A span closed.
    End {
        /// The span that closed.
        span: u64,
        /// Its name, repeated for self-contained JSONL lines.
        name: &'static str,
    },
    /// A point-in-time telemetry record (e.g. one solver iteration).
    Instant {
        /// Enclosing span on the emitting thread, if any.
        span: Option<u64>,
        /// Static event name (e.g. `"iteration"`).
        name: &'static str,
        /// Named values copied from already-computed solver state.
        fields: Vec<(&'static str, FieldValue)>,
    },
    /// A named monotonic counter increment.
    Counter {
        /// Enclosing span on the emitting thread, if any.
        span: Option<u64>,
        /// Counter name (e.g. `"retry"`, `"warm_start_hit"`).
        name: &'static str,
        /// Increment (usually 1).
        delta: u64,
    },
}

/// One recorded trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Nanoseconds since the tracer was created (monotonic clock).
    pub ts_ns: u64,
    /// Lane id of the emitting thread (registration order, 0-based).
    pub tid: u64,
    /// Per-lane sequence number (strictly increasing within a lane).
    pub seq: u64,
    /// Payload.
    pub kind: EventKind,
}

impl Event {
    /// The event's name regardless of kind.
    pub fn name(&self) -> &'static str {
        match &self.kind {
            EventKind::Begin { name, .. }
            | EventKind::End { name, .. }
            | EventKind::Instant { name, .. }
            | EventKind::Counter { name, .. } => name,
        }
    }

    /// The enclosing (or own, for begin/end) span id, if any.
    pub fn span_id(&self) -> Option<u64> {
        match &self.kind {
            EventKind::Begin { span, .. } | EventKind::End { span, .. } => Some(*span),
            EventKind::Instant { span, .. } | EventKind::Counter { span, .. } => *span,
        }
    }

    /// Looks up an instant field by name.
    pub fn field(&self, key: &str) -> Option<&FieldValue> {
        match &self.kind {
            EventKind::Instant { fields, .. } => {
                fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// Looks up a numeric instant field by name.
    pub fn field_f64(&self, key: &str) -> Option<f64> {
        match self.field(key)? {
            FieldValue::F64(v) => Some(*v),
            FieldValue::U64(v) => Some(*v as f64),
            FieldValue::Str(_) => None,
        }
    }

    fn type_str(&self) -> &'static str {
        match &self.kind {
            EventKind::Begin { .. } => "begin",
            EventKind::End { .. } => "end",
            EventKind::Instant { .. } => "instant",
            EventKind::Counter { .. } => "counter",
        }
    }

    fn to_json(&self) -> Value {
        let mut b = ObjectBuilder::new()
            .field("ts_ns", self.ts_ns)
            .field("tid", self.tid)
            .field("seq", self.seq)
            .field("type", self.type_str());
        match &self.kind {
            EventKind::Begin {
                span,
                parent,
                name,
                label,
            } => {
                b = b.field("span", *span);
                b = match parent {
                    Some(p) => b.field("parent", *p),
                    None => b.field("parent", Value::Null),
                };
                b = b.field("name", *name).field("label", label.as_str());
            }
            EventKind::End { span, name } => {
                b = b.field("span", *span).field("name", *name);
            }
            EventKind::Instant { span, name, fields } => {
                if let Some(s) = span {
                    b = b.field("span", *s);
                }
                b = b.field("name", *name);
                let mut fb = ObjectBuilder::new();
                for (k, v) in fields {
                    fb = match v {
                        FieldValue::F64(x) => fb.field(k, *x),
                        FieldValue::U64(x) => fb.field(k, *x),
                        FieldValue::Str(x) => fb.field(k, x.as_str()),
                    };
                }
                b = b.field("fields", fb.build());
            }
            EventKind::Counter { span, name, delta } => {
                if let Some(s) = span {
                    b = b.field("span", *s);
                }
                b = b.field("name", *name).field("delta", *delta);
            }
        }
        b.build()
    }
}

#[derive(Debug, Default)]
struct LaneState {
    events: Vec<Event>,
    /// Stack of open span ids on the owning thread.
    stack: Vec<u64>,
    seq: u64,
}

#[derive(Debug)]
struct Lane {
    tid: u64,
    state: Mutex<LaneState>,
}

#[derive(Debug)]
struct TracerInner {
    id: u64,
    level: TraceLevel,
    start: Instant,
    next_span: AtomicU64,
    next_tid: AtomicU64,
    lanes: Mutex<Vec<Arc<Lane>>>,
    /// Latest value per gauge name. Gauges are *state*, not history:
    /// unlike counters they live outside the event lanes, so setting one
    /// at high frequency (queue depth on every job) costs one map write
    /// and no event-buffer growth.
    gauges: Mutex<BTreeMap<&'static str, f64>>,
}

static NEXT_TRACER_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Per-thread cache of (tracer id → lane), so the hot path finds its
    /// lane without touching the shared registry. Tracer ids are globally
    /// unique, so a stale entry can never alias a new tracer.
    static LANE_CACHE: RefCell<Vec<(u64, Arc<Lane>)>> = const { RefCell::new(Vec::new()) };
}

/// A shared, cloneable trace sink. Cloning is cheap (one `Arc`); all
/// clones feed the same event store. A tracer at [`TraceLevel::Off`]
/// records nothing and every recording call is a constant-time no-op.
#[derive(Debug, Clone)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl Tracer {
    /// A tracer recording events at (and below) `level`.
    pub fn new(level: TraceLevel) -> Tracer {
        Tracer {
            inner: Arc::new(TracerInner {
                id: NEXT_TRACER_ID.fetch_add(1, Ordering::Relaxed),
                level,
                start: Instant::now(),
                next_span: AtomicU64::new(1),
                next_tid: AtomicU64::new(0),
                lanes: Mutex::new(Vec::new()),
                gauges: Mutex::new(BTreeMap::new()),
            }),
        }
    }

    /// The recording level.
    pub fn level(&self) -> TraceLevel {
        self.inner.level
    }

    /// Whether events at `level` are recorded.
    pub fn enabled(&self, level: TraceLevel) -> bool {
        level != TraceLevel::Off && level <= self.inner.level
    }

    fn now_ns(&self) -> u64 {
        self.inner.start.elapsed().as_nanos() as u64
    }

    /// The calling thread's lane, registering one on first use.
    fn lane(&self) -> Arc<Lane> {
        let id = self.inner.id;
        LANE_CACHE.with(|cache| {
            let mut cache = cache.borrow_mut();
            if let Some((_, lane)) = cache.iter().find(|(tid, _)| *tid == id) {
                return Arc::clone(lane);
            }
            let lane = Arc::new(Lane {
                tid: self.inner.next_tid.fetch_add(1, Ordering::Relaxed),
                state: Mutex::new(LaneState::default()),
            });
            self.inner
                .lanes
                .lock()
                .expect("trace lane registry")
                .push(Arc::clone(&lane));
            cache.push((id, Arc::clone(&lane)));
            lane
        })
    }

    fn push(&self, lane: &Lane, kind: EventKind) {
        let ts_ns = self.now_ns();
        let mut st = lane.state.lock().expect("trace lane");
        let seq = st.seq;
        st.seq += 1;
        st.events.push(Event {
            ts_ns,
            tid: lane.tid,
            seq,
            kind,
        });
    }

    /// Opens a span. Returns a guard that closes the span on drop; when
    /// `level` is above the tracer's level the guard is inert and nothing
    /// is recorded.
    pub fn span(&self, level: TraceLevel, name: &'static str, label: impl Into<String>) -> SpanGuard {
        if !self.enabled(level) {
            return SpanGuard { tracer: None, span: 0, name };
        }
        let span = self.inner.next_span.fetch_add(1, Ordering::Relaxed);
        let lane = self.lane();
        let parent = {
            let st = lane.state.lock().expect("trace lane");
            st.stack.last().copied()
        };
        self.push(
            &lane,
            EventKind::Begin {
                span,
                parent,
                name,
                label: label.into(),
            },
        );
        lane.state.lock().expect("trace lane").stack.push(span);
        SpanGuard {
            tracer: Some(self.clone()),
            span,
            name,
        }
    }

    /// Records a point-in-time telemetry event under the current span.
    pub fn instant(
        &self,
        level: TraceLevel,
        name: &'static str,
        fields: Vec<(&'static str, FieldValue)>,
    ) {
        if !self.enabled(level) {
            return;
        }
        let lane = self.lane();
        let span = lane.state.lock().expect("trace lane").stack.last().copied();
        self.push(&lane, EventKind::Instant { span, name, fields });
    }

    /// Increments a named counter. Counters are recorded at every level
    /// except [`TraceLevel::Off`].
    pub fn counter(&self, name: &'static str, delta: u64) {
        if self.inner.level == TraceLevel::Off {
            return;
        }
        let lane = self.lane();
        let span = lane.state.lock().expect("trace lane").stack.last().copied();
        self.push(&lane, EventKind::Counter { span, name, delta });
    }

    /// Sets a named gauge to its latest value. Gauges are recorded at
    /// every level except [`TraceLevel::Off`] and surface in
    /// [`Tracer::to_prometheus`] as `cppll_<name>` gauge samples — the
    /// natural shape for service state like queue depth or in-flight jobs.
    pub fn gauge(&self, name: &'static str, value: f64) {
        if self.inner.level == TraceLevel::Off {
            return;
        }
        self.inner
            .gauges
            .lock()
            .expect("trace gauges")
            .insert(name, value);
    }

    /// Latest value of every gauge ever set, by name.
    pub fn gauges(&self) -> BTreeMap<&'static str, f64> {
        self.inner.gauges.lock().expect("trace gauges").clone()
    }

    fn close_span(&self, span: u64, name: &'static str) {
        let lane = self.lane();
        {
            let mut st = lane.state.lock().expect("trace lane");
            if let Some(pos) = st.stack.iter().rposition(|&s| s == span) {
                st.stack.truncate(pos);
            }
        }
        self.push(&lane, EventKind::End { span, name });
    }

    /// All recorded events, merged across lanes and ordered by
    /// `(ts_ns, tid, seq)`.
    pub fn events(&self) -> Vec<Event> {
        let lanes = self.inner.lanes.lock().expect("trace lane registry");
        let mut all: Vec<Event> = Vec::new();
        for lane in lanes.iter() {
            all.extend(lane.state.lock().expect("trace lane").events.iter().cloned());
        }
        all.sort_by_key(|e| (e.ts_ns, e.tid, e.seq));
        all
    }

    /// Total recorded event count.
    pub fn event_count(&self) -> usize {
        let lanes = self.inner.lanes.lock().expect("trace lane registry");
        lanes
            .iter()
            .map(|l| l.state.lock().expect("trace lane").events.len())
            .sum()
    }

    /// Aggregated counter totals, sorted by name.
    pub fn counter_totals(&self) -> BTreeMap<&'static str, u64> {
        let mut totals = BTreeMap::new();
        for e in self.events() {
            if let EventKind::Counter { name, delta, .. } = e.kind {
                *totals.entry(name).or_insert(0) += delta;
            }
        }
        totals
    }

    /// The JSONL event log: one compact JSON object per line, in merged
    /// event order, with bit-exact `f64` encoding.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in self.events() {
            out.push_str(&e.to_json().to_compact_string());
            out.push('\n');
        }
        out
    }

    /// A Chrome `trace_event` JSON document (load in `about:tracing` or
    /// [Perfetto](https://ui.perfetto.dev)). Spans become `B`/`E` pairs,
    /// instants become `i` events with their fields under `args`, and
    /// counters become `C` events carrying the running total.
    pub fn to_chrome_trace(&self) -> String {
        let mut totals: BTreeMap<&'static str, u64> = BTreeMap::new();
        let mut rows: Vec<Value> = Vec::new();
        for e in self.events() {
            let ts_us = e.ts_ns as f64 / 1000.0;
            let base = |ph: &str, name: &str| {
                ObjectBuilder::new()
                    .field("ph", ph)
                    .field("name", name)
                    .field("ts", ts_us)
                    .field("pid", 1u64)
                    .field("tid", e.tid)
            };
            let row = match &e.kind {
                EventKind::Begin { label, name, .. } => base("B", name)
                    .field("args", ObjectBuilder::new().field("label", label.as_str()).build())
                    .build(),
                EventKind::End { name, .. } => base("E", name).build(),
                EventKind::Instant { name, fields, .. } => {
                    let mut fb = ObjectBuilder::new();
                    for (k, v) in fields {
                        fb = match v {
                            FieldValue::F64(x) => fb.field(k, *x),
                            FieldValue::U64(x) => fb.field(k, *x),
                            FieldValue::Str(x) => fb.field(k, x.as_str()),
                        };
                    }
                    base("i", name).field("s", "t").field("args", fb.build()).build()
                }
                EventKind::Counter { name, delta, .. } => {
                    let t = totals.entry(name).or_insert(0);
                    *t += delta;
                    base("C", name)
                        .field("args", ObjectBuilder::new().field("value", *t).build())
                        .build()
                }
            };
            rows.push(row);
        }
        ObjectBuilder::new()
            .field("traceEvents", Value::Array(rows))
            .field("displayTimeUnit", "ms")
            .build()
            .to_compact_string()
    }

    /// A Prometheus text-exposition metrics dump: every counter as
    /// `cppll_<name>_total`, the total event count, and per-span-name
    /// duration sums/counts from matched begin/end pairs.
    pub fn to_prometheus(&self) -> String {
        let events = self.events();
        let mut out = String::new();
        for (name, total) in self.counter_totals() {
            out.push_str(&format!("# TYPE cppll_{name}_total counter\n"));
            out.push_str(&format!("cppll_{name}_total {total}\n"));
        }
        for (name, value) in self.gauges() {
            out.push_str(&format!("# TYPE cppll_{name} gauge\n"));
            out.push_str(&format!("cppll_{name} {value}\n"));
        }
        out.push_str("# TYPE cppll_trace_events_total counter\n");
        out.push_str(&format!("cppll_trace_events_total {}\n", events.len()));

        let mut begins: BTreeMap<u64, (&'static str, u64)> = BTreeMap::new();
        let mut durs: BTreeMap<&'static str, (f64, u64)> = BTreeMap::new();
        for e in &events {
            match &e.kind {
                EventKind::Begin { span, name, .. } => {
                    begins.insert(*span, (name, e.ts_ns));
                }
                EventKind::End { span, .. } => {
                    if let Some((name, t0)) = begins.remove(span) {
                        let d = durs.entry(name).or_insert((0.0, 0));
                        d.0 += e.ts_ns.saturating_sub(t0) as f64 / 1e9;
                        d.1 += 1;
                    }
                }
                _ => {}
            }
        }
        if !durs.is_empty() {
            out.push_str("# TYPE cppll_span_duration_seconds summary\n");
            for (name, (sum, count)) in durs {
                out.push_str(&format!(
                    "cppll_span_duration_seconds_sum{{span=\"{name}\"}} {sum}\n"
                ));
                out.push_str(&format!(
                    "cppll_span_duration_seconds_count{{span=\"{name}\"}} {count}\n"
                ));
            }
        }
        out
    }

    /// Writes `trace.jsonl`, `trace.chrome.json`, and `metrics.prom`
    /// under `dir` (created if missing). Returns the three paths.
    pub fn write_all(&self, dir: &std::path::Path) -> std::io::Result<Vec<std::path::PathBuf>> {
        std::fs::create_dir_all(dir)?;
        let jsonl = dir.join("trace.jsonl");
        let chrome = dir.join("trace.chrome.json");
        let prom = dir.join("metrics.prom");
        std::fs::write(&jsonl, self.to_jsonl())?;
        std::fs::write(&chrome, self.to_chrome_trace())?;
        std::fs::write(&prom, self.to_prometheus())?;
        Ok(vec![jsonl, chrome, prom])
    }
}

/// RAII guard closing a span on drop. Inert when the span's level was
/// above the tracer's recording level.
#[derive(Debug)]
pub struct SpanGuard {
    tracer: Option<Tracer>,
    span: u64,
    name: &'static str,
}

impl SpanGuard {
    /// The span id, or `None` for an inert guard.
    pub fn id(&self) -> Option<u64> {
        self.tracer.as_ref().map(|_| self.span)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(t) = self.tracer.take() {
            t.close_span(self.span, self.name);
        }
    }
}

/// One node of the reconstructed span tree.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanNode {
    /// Span id.
    pub id: u64,
    /// Span name.
    pub name: String,
    /// The label the span was opened with.
    pub label: String,
    /// Child spans in open order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    fn render(&self, depth: usize, out: &mut String) {
        out.push_str(&"  ".repeat(depth));
        out.push_str(&self.name);
        out.push('\n');
        for c in &self.children {
            c.render(depth + 1, out);
        }
    }
}

/// Reconstructs the span forest (roots in open order) from an event
/// stream, using the parent links recorded at span open.
pub fn span_forest(events: &[Event]) -> Vec<SpanNode> {
    // Pass 1: create nodes; pass 2: attach children in begin order.
    let mut order: Vec<u64> = Vec::new();
    let mut nodes: BTreeMap<u64, SpanNode> = BTreeMap::new();
    let mut parents: BTreeMap<u64, Option<u64>> = BTreeMap::new();
    for e in events {
        if let EventKind::Begin {
            span,
            parent,
            name,
            label,
        } = &e.kind
        {
            order.push(*span);
            parents.insert(*span, *parent);
            nodes.insert(
                *span,
                SpanNode {
                    id: *span,
                    name: (*name).to_string(),
                    label: label.clone(),
                    children: Vec::new(),
                },
            );
        }
    }
    // Attach deepest-first so children are complete before their parent
    // swallows them: iterate begin order reversed.
    let mut roots: Vec<u64> = Vec::new();
    for &span in order.iter().rev() {
        let parent = parents.get(&span).copied().flatten();
        match parent {
            Some(p) if nodes.contains_key(&p) => {
                let node = nodes.remove(&span).expect("span node");
                let pn = nodes.get_mut(&p).expect("parent node");
                pn.children.insert(0, node);
            }
            _ => roots.push(span),
        }
    }
    roots.reverse();
    roots
        .into_iter()
        .filter_map(|s| nodes.remove(&s))
        .collect()
}

/// An in-memory trace sink for tests: wraps a [`Tracer`], hands out
/// clones to pass into solver/pipeline options, and answers structural
/// queries (span tree, counter totals, event filters) afterwards.
#[derive(Debug)]
pub struct TraceRecorder {
    tracer: Tracer,
}

impl TraceRecorder {
    /// A recorder capturing at `level`.
    pub fn new(level: TraceLevel) -> TraceRecorder {
        TraceRecorder {
            tracer: Tracer::new(level),
        }
    }

    /// A tracer clone to hand into options structs.
    pub fn tracer(&self) -> Tracer {
        self.tracer.clone()
    }

    /// All events recorded so far, in merged order.
    pub fn events(&self) -> Vec<Event> {
        self.tracer.events()
    }

    /// The reconstructed span forest.
    pub fn span_tree(&self) -> Vec<SpanNode> {
        span_forest(&self.tracer.events())
    }

    /// Total for one counter name (0 if never incremented).
    pub fn counter_total(&self, name: &str) -> u64 {
        self.tracer
            .counter_totals()
            .iter()
            .find(|(k, _)| **k == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Events with kind `Counter` and the given name.
    pub fn counter_events(&self, name: &str) -> Vec<Event> {
        self.events()
            .into_iter()
            .filter(|e| matches!(e.kind, EventKind::Counter { .. }) && e.name() == name)
            .collect()
    }

    /// Events with kind `Instant` and the given name.
    pub fn instants_named(&self, name: &str) -> Vec<Event> {
        self.events()
            .into_iter()
            .filter(|e| matches!(e.kind, EventKind::Instant { .. }) && e.name() == name)
            .collect()
    }

    /// Number of spans opened with the given name.
    pub fn spans_named(&self, name: &str) -> usize {
        self.events()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Begin { .. }) && e.name() == name)
            .count()
    }
}

/// Checks lane-local ordering invariants: within each lane (`tid`),
/// sequence numbers are strictly increasing and timestamps never go
/// backwards. Returns a description of the first violation.
pub fn check_lane_monotonic(events: &[Event]) -> Result<(), String> {
    let mut last: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
    // Events may arrive merged by (ts, tid, seq); re-split by lane.
    let mut by_lane: BTreeMap<u64, Vec<&Event>> = BTreeMap::new();
    for e in events {
        by_lane.entry(e.tid).or_default().push(e);
    }
    for (tid, lane) in by_lane {
        let mut sorted = lane.clone();
        sorted.sort_by_key(|e| e.seq);
        for e in sorted {
            if let Some(&(seq, ts)) = last.get(&tid) {
                if e.seq <= seq {
                    return Err(format!(
                        "lane {tid}: seq {} not greater than {}",
                        e.seq, seq
                    ));
                }
                if e.ts_ns < ts {
                    return Err(format!(
                        "lane {tid}: ts {} went backwards from {}",
                        e.ts_ns, ts
                    ));
                }
            }
            last.insert(tid, (e.seq, e.ts_ns));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Span-tree shape matching (assert_span_tree!)
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq)]
enum Quantifier {
    One,
    ZeroOrOne,
    ZeroOrMore,
    OneOrMore,
}

#[derive(Debug, Clone)]
struct SpecNode {
    name: String,
    quant: Quantifier,
    children: Vec<SpecNode>,
}

fn parse_spec(spec: &str) -> Result<Vec<SpecNode>, String> {
    // Indentation-based tree: two spaces per level; a trailing `*`, `+`,
    // or `?` on a name is a sibling quantifier.
    let mut roots: Vec<SpecNode> = Vec::new();
    // Stack of (depth, index-path into roots).
    let mut stack: Vec<(usize, Vec<usize>)> = Vec::new();
    for (lineno, raw) in spec.lines().enumerate() {
        let line = raw.trim_end();
        if line.trim().is_empty() {
            continue;
        }
        let indent = line.len() - line.trim_start().len();
        if indent % 2 != 0 {
            return Err(format!("line {}: odd indentation", lineno + 1));
        }
        let depth = indent / 2;
        let token = line.trim();
        let (name, quant) = match token.chars().last() {
            Some('*') => (&token[..token.len() - 1], Quantifier::ZeroOrMore),
            Some('+') => (&token[..token.len() - 1], Quantifier::OneOrMore),
            Some('?') => (&token[..token.len() - 1], Quantifier::ZeroOrOne),
            _ => (token, Quantifier::One),
        };
        let node = SpecNode {
            name: name.to_string(),
            quant,
            children: Vec::new(),
        };
        while let Some(&(d, _)) = stack.last() {
            if d >= depth {
                stack.pop();
            } else {
                break;
            }
        }
        let path = match stack.last() {
            None => {
                if depth != 0 {
                    return Err(format!("line {}: unexpected indentation", lineno + 1));
                }
                roots.push(node);
                vec![roots.len() - 1]
            }
            Some((d, parent_path)) => {
                if depth != d + 1 {
                    return Err(format!("line {}: indentation skips a level", lineno + 1));
                }
                let mut cur: &mut SpecNode = &mut roots[parent_path[0]];
                for &i in &parent_path[1..] {
                    cur = &mut cur.children[i];
                }
                cur.children.push(node);
                let mut p = parent_path.clone();
                p.push(cur.children.len() - 1);
                p
            }
        };
        stack.push((depth, path));
    }
    Ok(roots)
}

fn node_matches(node: &SpanNode, spec: &SpecNode, path: &str) -> Result<(), String> {
    if node.name != spec.name {
        return Err(format!(
            "{path}: expected span '{}', found '{}'",
            spec.name, node.name
        ));
    }
    match_siblings(&node.children, &spec.children, &format!("{path}/{}", node.name))
}

fn match_siblings(nodes: &[SpanNode], specs: &[SpecNode], path: &str) -> Result<(), String> {
    let mut i = 0usize;
    for spec in specs {
        match spec.quant {
            Quantifier::One => {
                let node = nodes.get(i).ok_or_else(|| {
                    format!("{path}: expected span '{}', found end of siblings", spec.name)
                })?;
                node_matches(node, spec, path)?;
                i += 1;
            }
            Quantifier::ZeroOrOne => {
                if let Some(node) = nodes.get(i) {
                    if node.name == spec.name {
                        node_matches(node, spec, path)?;
                        i += 1;
                    }
                }
            }
            Quantifier::OneOrMore => {
                let node = nodes.get(i).ok_or_else(|| {
                    format!(
                        "{path}: expected at least one span '{}', found end of siblings",
                        spec.name
                    )
                })?;
                node_matches(node, spec, path)?;
                i += 1;
                while let Some(node) = nodes.get(i) {
                    if node.name != spec.name {
                        break;
                    }
                    node_matches(node, spec, path)?;
                    i += 1;
                }
            }
            Quantifier::ZeroOrMore => {
                while let Some(node) = nodes.get(i) {
                    if node.name != spec.name {
                        break;
                    }
                    node_matches(node, spec, path)?;
                    i += 1;
                }
            }
        }
    }
    if i != nodes.len() {
        return Err(format!(
            "{path}: unexpected extra span '{}' at position {i}",
            nodes[i].name
        ));
    }
    Ok(())
}

/// Matches a span forest against an indented shape spec (two spaces per
/// level; `*` = zero or more, `+` = one or more, `?` = optional sibling).
/// Returns a description of the first mismatch, including a rendering of
/// the actual tree.
pub fn match_span_tree(nodes: &[SpanNode], spec: &str) -> Result<(), String> {
    let specs = parse_spec(spec)?;
    match_siblings(nodes, &specs, "").map_err(|e| {
        let mut actual = String::new();
        for n in nodes {
            n.render(0, &mut actual);
        }
        format!("{e}\nactual span tree:\n{actual}")
    })
}

/// Asserts that a [`TraceRecorder`]'s span tree matches an indented
/// shape spec.
///
/// ```
/// use cppll_trace::{assert_span_tree, TraceLevel, TraceRecorder};
/// let rec = TraceRecorder::new(TraceLevel::Solve);
/// let t = rec.tracer();
/// {
///     let _root = t.span(TraceLevel::Stage, "pipeline", "");
///     let _a = t.span(TraceLevel::Stage, "lyapunov", "");
/// }
/// assert_span_tree!(rec, "pipeline\n  lyapunov");
/// ```
#[macro_export]
macro_rules! assert_span_tree {
    ($recorder:expr, $spec:expr) => {
        if let Err(e) = $crate::match_span_tree(&$recorder.span_tree(), $spec) {
            panic!("span tree mismatch: {e}");
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_records_nothing() {
        let t = Tracer::new(TraceLevel::Off);
        {
            let _s = t.span(TraceLevel::Stage, "pipeline", "x");
            t.instant(TraceLevel::Stage, "tick", vec![]);
            t.counter("retry", 1);
        }
        assert_eq!(t.event_count(), 0);
        assert!(t.to_jsonl().is_empty());
    }

    #[test]
    fn level_gating_is_cumulative() {
        let t = Tracer::new(TraceLevel::Solve);
        assert!(t.enabled(TraceLevel::Stage));
        assert!(t.enabled(TraceLevel::Solve));
        assert!(!t.enabled(TraceLevel::Iter));
        assert!(!t.enabled(TraceLevel::Off));
        {
            let _s = t.span(TraceLevel::Iter, "iteration", "");
        }
        assert_eq!(t.event_count(), 0);
    }

    #[test]
    fn parse_level_names() {
        assert_eq!(TraceLevel::parse("off"), Some(TraceLevel::Off));
        assert_eq!(TraceLevel::parse("stage"), Some(TraceLevel::Stage));
        assert_eq!(TraceLevel::parse("solve"), Some(TraceLevel::Solve));
        assert_eq!(TraceLevel::parse("iter"), Some(TraceLevel::Iter));
        assert_eq!(TraceLevel::parse("debug"), None);
        assert_eq!(TraceLevel::Iter.as_str(), "iter");
    }

    #[test]
    fn span_nesting_and_parents() {
        let rec = TraceRecorder::new(TraceLevel::Iter);
        let t = rec.tracer();
        {
            let root = t.span(TraceLevel::Stage, "pipeline", "");
            let root_id = root.id().unwrap();
            {
                let child = t.span(TraceLevel::Solve, "sdp_solve", "m=3");
                let child_id = child.id().unwrap();
                t.instant(TraceLevel::Iter, "iteration", vec![("mu", 0.5.into())]);
                let events = rec.events();
                let begin = events
                    .iter()
                    .find(|e| matches!(e.kind, EventKind::Begin { span, .. } if span == child_id))
                    .unwrap();
                if let EventKind::Begin { parent, .. } = begin.kind {
                    assert_eq!(parent, Some(root_id));
                } else {
                    unreachable!()
                }
            }
        }
        let inst = &rec.instants_named("iteration")[0];
        assert_eq!(inst.field_f64("mu"), Some(0.5));
        assert_span_tree!(rec, "pipeline\n  sdp_solve");
    }

    #[test]
    fn counters_aggregate() {
        let rec = TraceRecorder::new(TraceLevel::Stage);
        let t = rec.tracer();
        t.counter("retry", 1);
        t.counter("retry", 1);
        t.counter("warm_start_hit", 3);
        assert_eq!(rec.counter_total("retry"), 2);
        assert_eq!(rec.counter_total("warm_start_hit"), 3);
        assert_eq!(rec.counter_total("missing"), 0);
        assert_eq!(rec.counter_events("retry").len(), 2);
    }

    #[test]
    fn jsonl_is_parseable_and_bit_exact() {
        let t = Tracer::new(TraceLevel::Iter);
        let x = 0.1f64 + 0.2f64;
        {
            let _s = t.span(TraceLevel::Stage, "pipeline", "toy");
            t.instant(TraceLevel::Iter, "iteration", vec![("mu", x.into())]);
            t.counter("retry", 1);
        }
        let jsonl = t.to_jsonl();
        let mut saw_mu = false;
        for line in jsonl.lines() {
            let v = cppll_json::parse(line).expect("well-formed line");
            assert!(v.get("ts_ns").is_some());
            assert!(v.get("type").is_some());
            if let Some(fields) = v.get("fields") {
                if let Some(mu) = fields.get("mu") {
                    assert_eq!(mu.as_f64().unwrap().to_bits(), x.to_bits());
                    saw_mu = true;
                }
            }
        }
        assert!(saw_mu);
    }

    #[test]
    fn chrome_trace_is_valid_json() {
        let t = Tracer::new(TraceLevel::Iter);
        {
            let _s = t.span(TraceLevel::Stage, "pipeline", "toy");
            t.instant(TraceLevel::Iter, "iteration", vec![("mu", 1.0.into())]);
            t.counter("retry", 1);
            t.counter("retry", 1);
        }
        let doc = cppll_json::parse(&t.to_chrome_trace()).expect("valid chrome trace");
        let rows = doc.get("traceEvents").and_then(|v| v.as_array()).unwrap();
        assert_eq!(rows.len(), 5); // B, i, C, C, E
        let phases: Vec<&str> = rows
            .iter()
            .map(|r| r.get("ph").and_then(|p| p.as_str()).unwrap())
            .collect();
        assert_eq!(phases, ["B", "i", "C", "C", "E"]);
        // Counter rows carry the running total.
        let c2 = rows[3].get("args").and_then(|a| a.get("value")).unwrap();
        assert_eq!(c2.as_f64(), Some(2.0));
    }

    #[test]
    fn prometheus_dump_has_counters_and_durations() {
        let t = Tracer::new(TraceLevel::Solve);
        {
            let _s = t.span(TraceLevel::Solve, "sdp_solve", "");
            t.counter("retry", 2);
        }
        let prom = t.to_prometheus();
        assert!(prom.contains("cppll_retry_total 2"));
        assert!(prom.contains("cppll_trace_events_total 3"));
        assert!(prom.contains("cppll_span_duration_seconds_count{span=\"sdp_solve\"} 1"));
    }

    #[test]
    fn gauges_keep_latest_value_and_export_as_prometheus_gauges() {
        let t = Tracer::new(TraceLevel::Stage);
        t.gauge("queue_depth", 3.0);
        t.gauge("queue_depth", 7.0);
        t.gauge("inflight", 2.0);
        assert_eq!(t.gauges().get("queue_depth"), Some(&7.0));
        let prom = t.to_prometheus();
        assert!(prom.contains("# TYPE cppll_queue_depth gauge"));
        assert!(prom.contains("cppll_queue_depth 7"));
        assert!(prom.contains("cppll_inflight 2"));
        // Gauges are state, not events: nothing lands in the lanes.
        assert_eq!(t.event_count(), 0);

        let off = Tracer::new(TraceLevel::Off);
        off.gauge("queue_depth", 1.0);
        assert!(off.gauges().is_empty());
    }

    #[test]
    fn span_tree_quantifiers() {
        let rec = TraceRecorder::new(TraceLevel::Solve);
        let t = rec.tracer();
        {
            let _p = t.span(TraceLevel::Stage, "pipeline", "");
            let _a = t.span(TraceLevel::Stage, "lyapunov", "");
            drop(_a);
            let _b = t.span(TraceLevel::Stage, "advection", "");
            for _ in 0..3 {
                let _s = t.span(TraceLevel::Stage, "advection_step", "");
            }
        }
        assert_span_tree!(
            rec,
            "pipeline\n  lyapunov\n  levelset?\n  advection\n    advection_step+\n  escape*"
        );
        assert!(match_span_tree(
            &rec.span_tree(),
            "pipeline\n  lyapunov\n  advection"
        )
        .is_err());
        assert!(match_span_tree(&rec.span_tree(), "pipeline\n  escape+").is_err());
    }

    #[test]
    fn multi_thread_lanes_merge() {
        let t = Tracer::new(TraceLevel::Iter);
        let _root = t.span(TraceLevel::Stage, "pipeline", "");
        let mut handles = Vec::new();
        for w in 0..4u64 {
            let tc = t.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..10u64 {
                    tc.instant(
                        TraceLevel::Iter,
                        "worker_tick",
                        vec![("w", w.into()), ("i", i.into())],
                    );
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        drop(_root);
        let events = t.events();
        assert_eq!(
            events
                .iter()
                .filter(|e| e.name() == "worker_tick")
                .count(),
            40
        );
        check_lane_monotonic(&events).unwrap();
    }

    #[test]
    fn write_all_creates_three_files() {
        let dir = std::env::temp_dir().join("cppll-trace-test-write-all");
        let _ = std::fs::remove_dir_all(&dir);
        let t = Tracer::new(TraceLevel::Stage);
        {
            let _s = t.span(TraceLevel::Stage, "pipeline", "");
        }
        let paths = t.write_all(&dir).unwrap();
        assert_eq!(paths.len(), 3);
        for p in &paths {
            assert!(p.exists(), "{p:?} missing");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
