//! Event-detecting fixed-step RK4 simulation of hybrid systems.

use crate::arc::{HybridArc, HybridSample, HybridTime};
use crate::system::HybridSystem;

/// Why a simulation run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimOutcome {
    /// The time horizon was reached.
    TimeHorizon,
    /// The jump budget was exhausted (possible Zeno behaviour).
    JumpBudget,
    /// The state left every flow set and no jump was enabled — the model is
    /// incomplete at this state (or tolerances are too tight).
    Blocked,
}

/// Fixed-step RK4 simulator with guard-event detection.
///
/// On each step the simulator integrates the active mode's flow; if the new
/// state leaves the mode's flow set, enabled jumps are taken (identity or
/// polynomial resets), incrementing the jump counter of hybrid time.
///
/// The simulator is deliberately simple — it is a *validation oracle* for
/// the SOS certificates, not a performance-critical engine. Guard crossings
/// are resolved by bisection to `time_tol`.
#[derive(Debug, Clone)]
pub struct Simulator<'s> {
    system: &'s HybridSystem,
    params: Vec<f64>,
    dt: f64,
    set_tol: f64,
    max_jumps: u32,
    store_every: usize,
}

impl<'s> Simulator<'s> {
    /// Creates a simulator with nominal parameters and default step `1e-3`.
    pub fn new(system: &'s HybridSystem) -> Self {
        Simulator {
            system,
            params: system.params().nominal(),
            dt: 1e-3,
            set_tol: 1e-9,
            max_jumps: 100_000,
            store_every: 1,
        }
    }

    /// Sets the integration step (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `dt <= 0`.
    pub fn with_step(mut self, dt: f64) -> Self {
        assert!(dt > 0.0, "step must be positive");
        self.dt = dt;
        self
    }

    /// Fixes the uncertain parameter sample (builder style).
    ///
    /// # Panics
    ///
    /// Panics if the length differs from the system's parameter count.
    pub fn with_params(mut self, params: Vec<f64>) -> Self {
        assert_eq!(
            params.len(),
            self.system.params().len(),
            "parameter count mismatch"
        );
        self.params = params;
        self
    }

    /// Sets the flow-set membership tolerance (builder style).
    pub fn with_set_tolerance(mut self, tol: f64) -> Self {
        self.set_tol = tol;
        self
    }

    /// Sets the jump budget (builder style).
    pub fn with_max_jumps(mut self, max_jumps: u32) -> Self {
        self.max_jumps = max_jumps;
        self
    }

    /// Stores only every `k`-th flow sample (jumps are always stored).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn with_thinning(mut self, k: usize) -> Self {
        assert!(k > 0, "thinning factor must be positive");
        self.store_every = k;
        self
    }

    /// Simulates from `x0` in `mode0` until continuous time `t_end`.
    ///
    /// Returns the sampled [`HybridArc`]; inspect
    /// [`Simulator::simulate_with_outcome`] for the stop reason.
    pub fn simulate(&self, x0: &[f64], mode0: usize, t_end: f64) -> HybridArc {
        self.simulate_with_outcome(x0, mode0, t_end).0
    }

    /// Simulates and also reports why the run stopped.
    ///
    /// # Panics
    ///
    /// Panics if `x0` has the wrong dimension or `mode0` is out of range.
    pub fn simulate_with_outcome(
        &self,
        x0: &[f64],
        mode0: usize,
        t_end: f64,
    ) -> (HybridArc, SimOutcome) {
        assert_eq!(x0.len(), self.system.nstates(), "state dimension mismatch");
        assert!(mode0 < self.system.modes().len(), "mode out of range");
        let mut arc = HybridArc::new();
        let mut x = x0.to_vec();
        let mut mode = mode0;
        let mut t = 0.0;
        let mut j = 0u32;
        let mut step_count = 0usize;
        arc.push(HybridSample {
            time: HybridTime { t, j },
            mode,
            state: x.clone(),
        });
        while t < t_end {
            // Take any enabled jump first if we are outside the flow set.
            if !self.system.modes()[mode].contains(&x, self.set_tol) {
                match self.take_jump(&mut x, &mut mode) {
                    true => {
                        j += 1;
                        if j >= self.max_jumps {
                            arc.push(HybridSample {
                                time: HybridTime { t, j },
                                mode,
                                state: x.clone(),
                            });
                            return (arc, SimOutcome::JumpBudget);
                        }
                        arc.push(HybridSample {
                            time: HybridTime { t, j },
                            mode,
                            state: x.clone(),
                        });
                        continue;
                    }
                    false => {
                        return (arc, SimOutcome::Blocked);
                    }
                }
            }
            let h = self.dt.min(t_end - t);
            let x_next = self.rk4_step(mode, &x, h);
            // Guard-event detection: if the step exits the flow set, bisect
            // to the boundary before switching.
            if !self.system.modes()[mode].contains(&x_next, self.set_tol) {
                let (x_hit, h_hit) = self.bisect_exit(mode, &x, h);
                x = x_hit;
                t += h_hit;
            } else {
                x = x_next;
                t += h;
            }
            step_count += 1;
            if step_count.is_multiple_of(self.store_every) {
                arc.push(HybridSample {
                    time: HybridTime { t, j },
                    mode,
                    state: x.clone(),
                });
            }
        }
        if arc.final_time().t < t {
            arc.push(HybridSample {
                time: HybridTime { t, j },
                mode,
                state: x.clone(),
            });
        }
        (arc, SimOutcome::TimeHorizon)
    }

    /// Classic RK4 step of length `h` in `mode`.
    fn rk4_step(&self, mode: usize, x: &[f64], h: f64) -> Vec<f64> {
        let f = |p: &[f64]| self.system.eval_flow(mode, p, &self.params);
        let k1 = f(x);
        let k2 = f(&combine(x, &k1, h / 2.0));
        let k3 = f(&combine(x, &k2, h / 2.0));
        let k4 = f(&combine(x, &k3, h));
        x.iter()
            .enumerate()
            .map(|(i, &xi)| xi + h / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]))
            .collect()
    }

    /// Bisection to the flow-set boundary within one step.
    fn bisect_exit(&self, mode: usize, x: &[f64], h: f64) -> (Vec<f64>, f64) {
        let mut lo = 0.0;
        let mut hi = h;
        for _ in 0..40 {
            let mid = 0.5 * (lo + hi);
            let xm = self.rk4_step(mode, x, mid);
            if self.system.modes()[mode].contains(&xm, self.set_tol) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        // Land slightly past the boundary so a jump becomes enabled.
        let h_hit = hi;
        (self.rk4_step(mode, x, h_hit), h_hit)
    }

    /// Attempts to take an enabled jump; returns `false` if none.
    fn take_jump(&self, x: &mut Vec<f64>, mode: &mut usize) -> bool {
        // Loosen the guard tolerance relative to set tolerance: the state is
        // marginally past the boundary after bisection.
        let tol = (self.set_tol * 1e3).max(1e-6);
        let jumps = self.system.enabled_jumps(*mode, x, tol);
        if let Some(jump) = jumps.first() {
            *x = jump.apply_reset(x);
            *mode = jump.to;
            true
        } else {
            false
        }
    }
}

fn combine(x: &[f64], k: &[f64], s: f64) -> Vec<f64> {
    x.iter().zip(k).map(|(xi, ki)| xi + s * ki).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::{HybridSystem, Jump, Mode};
    use cppll_poly::Polynomial;

    /// ẋ = −x, single mode: exponential decay.
    fn decay_system() -> HybridSystem {
        let f = vec![Polynomial::from_terms(1, &[(&[1], -1.0)])];
        HybridSystem::new(1, vec![Mode::new("decay", f)], vec![])
    }

    #[test]
    fn rk4_matches_exponential() {
        let sys = decay_system();
        let sim = Simulator::new(&sys).with_step(1e-2);
        let arc = sim.simulate(&[1.0], 0, 1.0);
        let expected = (-1.0f64).exp();
        assert!(
            (arc.final_state()[0] - expected).abs() < 1e-6,
            "got {}",
            arc.final_state()[0]
        );
    }

    /// Bouncing ball: ḣ = v, v̇ = −g on {h ≥ 0}; jump v⁺ = −c v at h = 0, v < 0.
    fn bouncing_ball(c: f64) -> HybridSystem {
        let flow = vec![
            Polynomial::from_terms(2, &[(&[0, 1], 1.0)]),
            Polynomial::from_terms(2, &[(&[0, 0], -9.81)]),
        ];
        let mode = Mode::new("fall", flow).with_flow_set(vec![Polynomial::var(2, 0)]); // h ≥ 0
        let guard = vec![
            // −h ≥ 0 (at/past the floor) and −v ≥ 0 (moving down)
            Polynomial::var(2, 0).scale(-1.0),
            Polynomial::var(2, 1).scale(-1.0),
        ];
        let reset = vec![
            Polynomial::zero(2), // h⁺ = 0
            Polynomial::from_terms(2, &[(&[0, 1], -c)]),
        ];
        let jump = Jump::identity(0, 0).with_guard(guard).with_reset(reset);
        HybridSystem::new(2, vec![mode], vec![jump])
    }

    #[test]
    fn bouncing_ball_loses_energy() {
        let sys = bouncing_ball(0.8);
        let sim = Simulator::new(&sys).with_step(1e-4).with_thinning(10);
        let (arc, outcome) = sim.simulate_with_outcome(&[1.0, 0.0], 0, 2.0);
        assert_eq!(outcome, SimOutcome::TimeHorizon);
        assert!(
            arc.jumps() >= 2,
            "expected several bounces, got {}",
            arc.jumps()
        );
        // Energy must decrease across the run.
        let e0 = 9.81 * 1.0;
        let e_end = 9.81 * arc.final_state()[0] + 0.5 * arc.final_state()[1].powi(2);
        assert!(e_end < 0.8 * e0, "energy did not decrease: {e_end} vs {e0}");
        // Height stays (numerically) nonnegative.
        assert!(arc.max_over(|x| -x[0]) < 1e-3);
    }

    #[test]
    fn jump_budget_detects_zeno() {
        let sys = bouncing_ball(0.5);
        let sim = Simulator::new(&sys)
            .with_step(1e-4)
            .with_max_jumps(3)
            .with_thinning(100);
        let (_, outcome) = sim.simulate_with_outcome(&[1.0, 0.0], 0, 10.0);
        assert_eq!(outcome, SimOutcome::JumpBudget);
    }

    #[test]
    fn blocked_when_no_jump_enabled() {
        // Flow pushes x up but flow set requires x ≤ 1 and there is no jump.
        let f = vec![Polynomial::constant(1, 1.0)];
        let set = vec![&Polynomial::constant(1, 1.0) - &Polynomial::var(1, 0)];
        let mode = Mode::new("m", f).with_flow_set(set);
        let sys = HybridSystem::new(1, vec![mode], vec![]);
        let sim = Simulator::new(&sys).with_step(1e-2);
        let (arc, outcome) = sim.simulate_with_outcome(&[0.0], 0, 5.0);
        assert_eq!(outcome, SimOutcome::Blocked);
        assert!((arc.final_state()[0] - 1.0).abs() < 1e-2);
    }

    #[test]
    fn parameterized_flow_uses_sample() {
        // ẋ = −u x, u ∈ [1, 3]; with u = 2 fixed, x(1) = e^{-2}.
        let f = vec![Polynomial::from_terms(2, &[(&[1, 1], -1.0)])];
        let sys = HybridSystem::with_params(
            1,
            vec![Mode::new("m", f)],
            vec![],
            crate::ParamBox::new(vec![1.0], vec![3.0]),
        );
        let sim = Simulator::new(&sys).with_step(1e-3).with_params(vec![2.0]);
        let arc = sim.simulate(&[1.0], 0, 1.0);
        assert!((arc.final_state()[0] - (-2.0f64).exp()).abs() < 1e-6);
    }
}
