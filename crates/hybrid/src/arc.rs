//! Hybrid time domains and hybrid arcs (Definitions 1–2 of the paper).

/// A point of hybrid time: continuous time `t` together with the number of
/// jumps `j` taken so far.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HybridTime {
    /// Continuous (flow) time.
    pub t: f64,
    /// Discrete (jump) counter.
    pub j: u32,
}

impl HybridTime {
    /// The origin of hybrid time `(0, 0)`.
    pub fn zero() -> Self {
        HybridTime { t: 0.0, j: 0 }
    }
}

impl std::fmt::Display for HybridTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({:.6}, {})", self.t, self.j)
    }
}

/// One sample of a hybrid arc: hybrid time, active mode and state.
#[derive(Debug, Clone, PartialEq)]
pub struct HybridSample {
    /// Hybrid time of the sample.
    pub time: HybridTime,
    /// Active mode index.
    pub mode: usize,
    /// State vector.
    pub state: Vec<f64>,
}

/// A sampled hybrid arc `φ : E → ℝⁿ` over a hybrid time domain
/// (Definition 2): a sequence of samples whose times are monotone in the
/// lexicographic hybrid-time order (`t` nondecreasing, `j` nondecreasing,
/// jumps increment `j` at constant `t`).
#[derive(Debug, Clone, Default)]
pub struct HybridArc {
    samples: Vec<HybridSample>,
}

impl HybridArc {
    /// Creates an empty arc.
    pub fn new() -> Self {
        HybridArc {
            samples: Vec::new(),
        }
    }

    /// Appends a sample.
    ///
    /// # Panics
    ///
    /// Panics if the sample violates hybrid-time monotonicity.
    pub fn push(&mut self, sample: HybridSample) {
        if let Some(last) = self.samples.last() {
            let ok = sample.time.t > last.time.t
                || (sample.time.t >= last.time.t && sample.time.j >= last.time.j);
            assert!(ok, "hybrid time must be monotone");
        }
        self.samples.push(sample);
    }

    /// All samples in order.
    pub fn samples(&self) -> &[HybridSample] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when the arc has no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The final state.
    ///
    /// # Panics
    ///
    /// Panics if the arc is empty.
    pub fn final_state(&self) -> &[f64] {
        &self.samples.last().expect("arc is empty").state
    }

    /// The final hybrid time.
    ///
    /// # Panics
    ///
    /// Panics if the arc is empty.
    pub fn final_time(&self) -> HybridTime {
        self.samples.last().expect("arc is empty").time
    }

    /// Total number of jumps taken.
    pub fn jumps(&self) -> u32 {
        self.samples.last().map_or(0, |s| s.time.j)
    }

    /// Iterates over consecutive sample pairs `(previous, next)`.
    pub fn transitions(&self) -> impl Iterator<Item = (&HybridSample, &HybridSample)> {
        self.samples.windows(2).map(|w| (&w[0], &w[1]))
    }

    /// First hybrid time at which `pred(state)` holds, if any.
    pub fn first_time_where(&self, mut pred: impl FnMut(&[f64]) -> bool) -> Option<HybridTime> {
        self.samples.iter().find(|s| pred(&s.state)).map(|s| s.time)
    }

    /// Maximum over the arc of `f(state)` (−∞ for an empty arc).
    pub fn max_over(&self, mut f: impl FnMut(&[f64]) -> f64) -> f64 {
        self.samples
            .iter()
            .fold(f64::NEG_INFINITY, |m, s| m.max(f(&s.state)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(t: f64, j: u32, x: f64) -> HybridSample {
        HybridSample {
            time: HybridTime { t, j },
            mode: 0,
            state: vec![x],
        }
    }

    #[test]
    fn monotone_push() {
        let mut arc = HybridArc::new();
        arc.push(s(0.0, 0, 1.0));
        arc.push(s(0.5, 0, 0.7));
        arc.push(s(0.5, 1, 0.7)); // jump at constant t
        arc.push(s(1.0, 1, 0.3));
        assert_eq!(arc.jumps(), 1);
        assert_eq!(arc.final_state(), &[0.3]);
        assert_eq!(arc.final_time().t, 1.0);
        assert_eq!(arc.transitions().count(), 3);
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn non_monotone_rejected() {
        let mut arc = HybridArc::new();
        arc.push(s(1.0, 0, 1.0));
        arc.push(s(0.5, 0, 1.0));
    }

    #[test]
    fn queries() {
        let mut arc = HybridArc::new();
        arc.push(s(0.0, 0, 2.0));
        arc.push(s(1.0, 0, 0.5));
        arc.push(s(2.0, 0, 0.1));
        let t = arc.first_time_where(|x| x[0] < 1.0).unwrap();
        assert_eq!(t.t, 1.0);
        assert_eq!(arc.max_over(|x| x[0]), 2.0);
    }
}
