//! Hybrid system modelling types.

use cppll_poly::Polynomial;

/// A box of uncertain parameters `u ∈ [lo, hi]` entering the flow maps.
///
/// Parameters are appended as extra indeterminates after the state
/// variables: a flow polynomial of a system with `n` states and `k`
/// parameters lives in an `(n + k)`-variable ring.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamBox {
    lo: Vec<f64>,
    hi: Vec<f64>,
}

impl ParamBox {
    /// Creates a parameter box.
    ///
    /// # Panics
    ///
    /// Panics if the bound vectors have different lengths or `lo > hi`
    /// componentwise.
    pub fn new(lo: Vec<f64>, hi: Vec<f64>) -> Self {
        assert_eq!(lo.len(), hi.len(), "bound lengths must match");
        for (l, h) in lo.iter().zip(&hi) {
            assert!(l <= h, "lower bound exceeds upper bound");
        }
        ParamBox { lo, hi }
    }

    /// The empty box (no parameters).
    pub fn empty() -> Self {
        ParamBox {
            lo: Vec::new(),
            hi: Vec::new(),
        }
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.lo.len()
    }

    /// `true` when there are no parameters.
    pub fn is_empty(&self) -> bool {
        self.lo.is_empty()
    }

    /// Lower bounds.
    pub fn lo(&self) -> &[f64] {
        &self.lo
    }

    /// Upper bounds.
    pub fn hi(&self) -> &[f64] {
        &self.hi
    }

    /// Midpoint of the box (the nominal parameter value).
    pub fn nominal(&self) -> Vec<f64> {
        self.lo
            .iter()
            .zip(&self.hi)
            .map(|(l, h)| 0.5 * (l + h))
            .collect()
    }

    /// All `2ᵏ` vertices of the box. For flows affine in the parameters,
    /// robustness over the box is equivalent to robustness at the vertices.
    pub fn vertices(&self) -> Vec<Vec<f64>> {
        let k = self.len();
        let mut out = Vec::with_capacity(1 << k);
        for mask in 0u64..(1u64 << k) {
            let v: Vec<f64> = (0..k)
                .map(|i| {
                    if mask >> i & 1 == 1 {
                        self.hi[i]
                    } else {
                        self.lo[i]
                    }
                })
                .collect();
            out.push(v);
        }
        out
    }

    /// The box description as polynomial inequalities `gⱼ(u) ≥ 0` over an
    /// `(n + k)`-variable ring (states first): `(uᵢ − loᵢ)(hiᵢ − uᵢ) ≥ 0`.
    pub fn constraints(&self, nstates: usize) -> Vec<Polynomial> {
        let nvars = nstates + self.len();
        (0..self.len())
            .map(|i| {
                let u = Polynomial::var(nvars, nstates + i);
                let lo = Polynomial::constant(nvars, self.lo[i]);
                let hi = Polynomial::constant(nvars, self.hi[i]);
                &(&u - &lo) * &(&hi - &u)
            })
            .collect()
    }

    /// Uniform sample inside the box, driven by values in `[0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `unit.len() != self.len()`.
    pub fn sample(&self, unit: &[f64]) -> Vec<f64> {
        assert_eq!(unit.len(), self.len(), "sample dimension mismatch");
        unit.iter()
            .zip(self.lo.iter().zip(&self.hi))
            .map(|(t, (l, h))| l + t * (h - l))
            .collect()
    }
}

/// One mode of a hybrid system: a polynomial flow map `f(x, u)` valid on the
/// semialgebraic flow set `Cᵢ = {x : gⱼ(x) ≥ 0}`.
#[derive(Debug, Clone)]
pub struct Mode {
    name: String,
    /// Flow map components over the `(nstates + nparams)`-variable ring.
    flow: Vec<Polynomial>,
    /// Flow set inequalities `g(x) ≥ 0` over the state ring only.
    flow_set: Vec<Polynomial>,
}

impl Mode {
    /// Creates a mode with the given flow map and an unconstrained flow set.
    pub fn new(name: impl Into<String>, flow: Vec<Polynomial>) -> Self {
        Mode {
            name: name.into(),
            flow,
            flow_set: Vec::new(),
        }
    }

    /// Sets the flow set inequalities `g(x) ≥ 0` (builder style).
    pub fn with_flow_set(mut self, flow_set: Vec<Polynomial>) -> Self {
        self.flow_set = flow_set;
        self
    }

    /// Mode name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Flow map components (over the state+parameter ring).
    pub fn flow(&self) -> &[Polynomial] {
        &self.flow
    }

    /// Flow set inequalities (over the state ring).
    pub fn flow_set(&self) -> &[Polynomial] {
        &self.flow_set
    }

    /// `true` when `x` satisfies every flow-set inequality within `tol`.
    pub fn contains(&self, x: &[f64], tol: f64) -> bool {
        self.flow_set.iter().all(|g| g.eval(x) >= -tol)
    }
}

/// A discrete transition: from one mode to another, enabled on a guard set,
/// applying a polynomial reset map.
#[derive(Debug, Clone)]
pub struct Jump {
    /// Source mode index.
    pub from: usize,
    /// Target mode index.
    pub to: usize,
    /// Guard inequalities `g(x) ≥ 0` (state ring).
    pub guard: Vec<Polynomial>,
    /// Guard equalities `h(x) = 0` (state ring) — the switching surfaces.
    pub guard_eq: Vec<Polynomial>,
    /// Reset map `x⁺ = R(x)`; identity when empty.
    pub reset: Vec<Polynomial>,
}

impl Jump {
    /// Creates an identity-reset jump.
    pub fn identity(from: usize, to: usize) -> Self {
        Jump {
            from,
            to,
            guard: Vec::new(),
            guard_eq: Vec::new(),
            reset: Vec::new(),
        }
    }

    /// Adds guard inequalities (builder style).
    pub fn with_guard(mut self, guard: Vec<Polynomial>) -> Self {
        self.guard = guard;
        self
    }

    /// Adds guard equalities (builder style).
    pub fn with_guard_eq(mut self, guard_eq: Vec<Polynomial>) -> Self {
        self.guard_eq = guard_eq;
        self
    }

    /// Sets a non-identity reset map (builder style).
    pub fn with_reset(mut self, reset: Vec<Polynomial>) -> Self {
        self.reset = reset;
        self
    }

    /// `true` when the reset map is the identity.
    pub fn is_identity_reset(&self) -> bool {
        self.reset.is_empty()
    }

    /// Applies the reset map to a state.
    pub fn apply_reset(&self, x: &[f64]) -> Vec<f64> {
        if self.reset.is_empty() {
            x.to_vec()
        } else {
            self.reset.iter().map(|r| r.eval(x)).collect()
        }
    }

    /// `true` when the guard is satisfied within `tol`.
    pub fn enabled(&self, x: &[f64], tol: f64) -> bool {
        self.guard.iter().all(|g| g.eval(x) >= -tol)
            && self.guard_eq.iter().all(|h| h.eval(x).abs() <= tol)
    }
}

/// A hybrid system `(C, F, D, G)` with finitely many modes, polynomial flow
/// and jump maps, and a box of uncertain parameters.
#[derive(Debug, Clone)]
pub struct HybridSystem {
    nstates: usize,
    modes: Vec<Mode>,
    jumps: Vec<Jump>,
    params: ParamBox,
}

impl HybridSystem {
    /// Creates a hybrid system without uncertain parameters.
    ///
    /// # Panics
    ///
    /// Panics if any mode's flow map has the wrong arity or jump indices are
    /// out of range.
    pub fn new(nstates: usize, modes: Vec<Mode>, jumps: Vec<Jump>) -> Self {
        Self::with_params(nstates, modes, jumps, ParamBox::empty())
    }

    /// Creates a hybrid system with uncertain parameters; every flow
    /// polynomial must live in the `(nstates + params.len())`-variable ring.
    ///
    /// # Panics
    ///
    /// Panics on arity mismatches or out-of-range jump mode indices.
    pub fn with_params(
        nstates: usize,
        modes: Vec<Mode>,
        jumps: Vec<Jump>,
        params: ParamBox,
    ) -> Self {
        let ring = nstates + params.len();
        for m in &modes {
            assert_eq!(m.flow.len(), nstates, "flow map arity mismatch");
            for f in &m.flow {
                assert_eq!(f.nvars(), ring, "flow polynomial ring mismatch");
            }
            for g in &m.flow_set {
                assert_eq!(g.nvars(), nstates, "flow set ring mismatch");
            }
        }
        for j in &jumps {
            assert!(
                j.from < modes.len() && j.to < modes.len(),
                "jump mode out of range"
            );
            for r in &j.reset {
                assert_eq!(r.nvars(), nstates, "reset ring mismatch");
            }
        }
        HybridSystem {
            nstates,
            modes,
            jumps,
            params,
        }
    }

    /// Number of state variables.
    pub fn nstates(&self) -> usize {
        self.nstates
    }

    /// The modes.
    pub fn modes(&self) -> &[Mode] {
        &self.modes
    }

    /// The jumps.
    pub fn jumps(&self) -> &[Jump] {
        &self.jumps
    }

    /// The uncertain parameter box.
    pub fn params(&self) -> &ParamBox {
        &self.params
    }

    /// Flow map of `mode` with parameters substituted by `u`, returned over
    /// the **state-only** ring.
    ///
    /// # Panics
    ///
    /// Panics if `mode` is out of range or `u.len() != self.params().len()`.
    pub fn flow_with_params(&self, mode: usize, u: &[f64]) -> Vec<Polynomial> {
        assert_eq!(u.len(), self.params.len(), "parameter count mismatch");
        let n = self.nstates;
        let ring = n + u.len();
        // Substitution x_i -> x_i (state ring), u_j -> constant.
        let mut subs: Vec<Polynomial> = (0..n).map(|i| Polynomial::var(n, i)).collect();
        for &uv in u {
            subs.push(Polynomial::constant(n, uv));
        }
        self.modes[mode]
            .flow
            .iter()
            .map(|f| {
                debug_assert_eq!(f.nvars(), ring);
                f.compose(&subs)
            })
            .collect()
    }

    /// Flow maps of `mode` at every vertex of the parameter box (state-only
    /// ring). For parameter-free systems this is a single entry.
    pub fn flow_vertices(&self, mode: usize) -> Vec<Vec<Polynomial>> {
        if self.params.is_empty() {
            return vec![self.flow_with_params(mode, &[])];
        }
        self.params
            .vertices()
            .into_iter()
            .map(|v| self.flow_with_params(mode, &v))
            .collect()
    }

    /// Numeric evaluation of the flow at `(x, u)` in `mode`.
    ///
    /// # Panics
    ///
    /// Panics on arity mismatches.
    pub fn eval_flow(&self, mode: usize, x: &[f64], u: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.nstates, "state dimension mismatch");
        assert_eq!(u.len(), self.params.len(), "parameter count mismatch");
        let mut point = x.to_vec();
        point.extend_from_slice(u);
        self.modes[mode]
            .flow
            .iter()
            .map(|f| f.eval(&point))
            .collect()
    }

    /// Indices of modes whose flow set contains `x` (within `tol`).
    pub fn modes_containing(&self, x: &[f64], tol: f64) -> Vec<usize> {
        (0..self.modes.len())
            .filter(|&i| self.modes[i].contains(x, tol))
            .collect()
    }

    /// `true` if `(x, u)` is an equilibrium of some mode containing `x`
    /// (Definition 3 of the paper).
    pub fn is_equilibrium(&self, x: &[f64], u: &[f64], tol: f64) -> bool {
        self.modes_containing(x, tol)
            .iter()
            .any(|&m| self.eval_flow(m, x, u).iter().all(|v| v.abs() <= tol))
    }

    /// Jumps leaving `mode` that are enabled at `x`.
    pub fn enabled_jumps(&self, mode: usize, x: &[f64], tol: f64) -> Vec<&Jump> {
        self.jumps
            .iter()
            .filter(|j| j.from == mode && j.enabled(x, tol))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_box_vertices_and_constraints() {
        let b = ParamBox::new(vec![0.0, -1.0], vec![1.0, 1.0]);
        let vs = b.vertices();
        assert_eq!(vs.len(), 4);
        assert!(vs.contains(&vec![0.0, -1.0]));
        assert!(vs.contains(&vec![1.0, 1.0]));
        let cs = b.constraints(1); // 1 state + 2 params = 3-var ring
        assert_eq!(cs.len(), 2);
        // g(u1) at u1 = 0.5 interior: positive.
        assert!(cs[0].eval(&[9.9, 0.5, 0.0]) > 0.0);
        // outside: negative.
        assert!(cs[0].eval(&[9.9, 2.0, 0.0]) < 0.0);
    }

    #[test]
    fn flow_with_params_substitutes() {
        // ẋ = -u·x with u ∈ [1, 2].
        let f = vec![Polynomial::from_terms(2, &[(&[1, 1], -1.0)])];
        let mode = Mode::new("m", f);
        let sys =
            HybridSystem::with_params(1, vec![mode], vec![], ParamBox::new(vec![1.0], vec![2.0]));
        let f1 = sys.flow_with_params(0, &[1.5]);
        assert_eq!(f1[0].eval(&[2.0]), -3.0);
        assert_eq!(sys.flow_vertices(0).len(), 2);
        assert_eq!(sys.eval_flow(0, &[2.0], &[2.0]), vec![-4.0]);
    }

    #[test]
    fn equilibrium_detection() {
        let f = vec![Polynomial::from_terms(1, &[(&[1], -1.0)])];
        let sys = HybridSystem::new(1, vec![Mode::new("m", f)], vec![]);
        assert!(sys.is_equilibrium(&[0.0], &[], 1e-9));
        assert!(!sys.is_equilibrium(&[1.0], &[], 1e-9));
    }

    #[test]
    fn jumps_enable_on_guards() {
        let guard = vec![Polynomial::from_terms(1, &[(&[1], 1.0), (&[0], -1.0)])]; // x ≥ 1
        let j = Jump::identity(0, 1).with_guard(guard);
        assert!(j.enabled(&[1.5], 1e-9));
        assert!(!j.enabled(&[0.5], 1e-9));
        assert!(j.is_identity_reset());
        assert_eq!(j.apply_reset(&[3.0]), vec![3.0]);
    }

    #[test]
    fn reset_maps_apply() {
        // x⁺ = -0.5 x
        let reset = vec![Polynomial::from_terms(1, &[(&[1], -0.5)])];
        let j = Jump::identity(0, 0).with_reset(reset);
        assert_eq!(j.apply_reset(&[4.0]), vec![-2.0]);
        assert!(!j.is_identity_reset());
    }
}
