//! Hybrid dynamical systems in the Goebel–Sanfelice–Teel framework used by
//! the paper: flow sets `C = ∪ᵢ Cᵢ`, jump sets `D`, polynomial flow maps
//! `fᵢ(x, u)` and jump maps `Rᵢ(x)`, evolving over *hybrid time* `(t, j)`.
//!
//! The crate provides
//!
//! * the modelling types ([`HybridSystem`], [`Mode`], [`Jump`],
//!   [`ParamBox`]) with uncertain parameters entering the flow maps,
//! * hybrid time domains and arcs ([`HybridTime`], [`HybridArc`],
//!   Definitions 1–2 of the paper),
//! * an event-detecting RK4 [`Simulator`] producing hybrid arcs — the
//!   ground-truth oracle used to cross-validate SOS certificates.
//!
//! # Examples
//!
//! A one-mode linear system flowing towards the origin:
//!
//! ```
//! use cppll_poly::Polynomial;
//! use cppll_hybrid::{HybridSystem, Mode, Simulator};
//!
//! let f = vec![Polynomial::from_terms(1, &[(&[1], -1.0)])]; // ẋ = −x
//! let mode = Mode::new("decay", f).with_flow_set(vec![]);
//! let sys = HybridSystem::new(1, vec![mode], vec![]);
//! let sim = Simulator::new(&sys).with_step(1e-3);
//! let arc = sim.simulate(&[1.0], 0, 5.0);
//! assert!(arc.final_state()[0].abs() < 0.01);
//! ```

mod arc;
mod simulator;
mod system;

pub use arc::{HybridArc, HybridSample, HybridTime};
pub use simulator::{SimOutcome, Simulator};
pub use system::{HybridSystem, Jump, Mode, ParamBox};
