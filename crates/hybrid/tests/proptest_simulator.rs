//! Property-based tests of the hybrid simulator: conservation against
//! analytic solutions, flow-set respect, hybrid-time monotonicity and
//! parameter handling.

use cppll_hybrid::{HybridSystem, Jump, Mode, ParamBox, Simulator};
use cppll_poly::Polynomial;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Linear decay ẋ = −λx matches the analytic exponential for random
    /// rates and initial values.
    #[test]
    fn exponential_decay_accuracy(lambda in 0.1f64..3.0, x0 in -5.0f64..5.0) {
        let f = vec![Polynomial::from_terms(1, &[(&[1], -lambda)])];
        let sys = HybridSystem::new(1, vec![Mode::new("decay", f)], vec![]);
        let sim = Simulator::new(&sys).with_step(1e-3);
        let arc = sim.simulate(&[x0], 0, 1.0);
        let expect = x0 * (-lambda).exp();
        prop_assert!((arc.final_state()[0] - expect).abs() < 1e-6 * (1.0 + expect.abs()));
    }

    /// Harmonic oscillator conserves energy over moderate horizons.
    #[test]
    fn oscillator_energy_conservation(x0 in -2.0f64..2.0, v0 in -2.0f64..2.0) {
        prop_assume!(x0.abs() + v0.abs() > 0.1);
        let f = vec![
            Polynomial::from_terms(2, &[(&[0, 1], 1.0)]),
            Polynomial::from_terms(2, &[(&[1, 0], -1.0)]),
        ];
        let sys = HybridSystem::new(2, vec![Mode::new("osc", f)], vec![]);
        let sim = Simulator::new(&sys).with_step(1e-3).with_thinning(100);
        let arc = sim.simulate(&[x0, v0], 0, 10.0);
        let e0 = x0 * x0 + v0 * v0;
        for s in arc.samples() {
            let e = s.state[0] * s.state[0] + s.state[1] * s.state[1];
            prop_assert!((e - e0).abs() < 1e-5 * e0, "energy drift: {e} vs {e0}");
        }
    }

    /// Hybrid time along any arc is monotone and jumps only at constant t.
    #[test]
    fn hybrid_time_monotonicity(h0 in 0.2f64..2.0, c in 0.3f64..0.9) {
        // Bouncing ball, random drop height and restitution.
        let flow = vec![
            Polynomial::from_terms(2, &[(&[0, 1], 1.0)]),
            Polynomial::from_terms(2, &[(&[0, 0], -9.81)]),
        ];
        let mode = Mode::new("fall", flow)
            .with_flow_set(vec![Polynomial::var(2, 0)]);
        let guard = vec![
            Polynomial::var(2, 0).scale(-1.0),
            Polynomial::var(2, 1).scale(-1.0),
        ];
        let reset = vec![
            Polynomial::zero(2),
            Polynomial::from_terms(2, &[(&[0, 1], -c)]),
        ];
        let jump = Jump::identity(0, 0).with_guard(guard).with_reset(reset);
        let sys = HybridSystem::new(2, vec![mode], vec![jump]);
        // Thinning 1: every flow sample is stored, so a jump's sample pairs
        // with the boundary-hit sample at the same continuous time.
        let sim = Simulator::new(&sys).with_step(5e-4).with_thinning(1);
        let arc = sim.simulate(&[h0, 0.0], 0, 1.5);
        for (a, b) in arc.transitions() {
            prop_assert!(b.time.t >= a.time.t);
            prop_assert!(b.time.j >= a.time.j);
            if b.time.j > a.time.j {
                prop_assert!((b.time.t - a.time.t).abs() < 1e-3,
                    "jump advanced t by {}", b.time.t - a.time.t);
            }
        }
        // Height stays above the floor (within integration slop).
        prop_assert!(arc.max_over(|x| -x[0]) < 1e-2);
    }

    /// Parameter box sampling respects bounds and vertices are extreme.
    #[test]
    fn param_box_geometry(lo in -3.0f64..0.0, width in 0.1f64..2.0, t in 0.0f64..1.0) {
        let b = ParamBox::new(vec![lo], vec![lo + width]);
        let s = b.sample(&[t]);
        prop_assert!(s[0] >= lo && s[0] <= lo + width);
        let vs = b.vertices();
        prop_assert_eq!(vs.len(), 2);
        prop_assert!(vs.iter().any(|v| (v[0] - lo).abs() < 1e-12));
        prop_assert!(vs.iter().any(|v| (v[0] - lo - width).abs() < 1e-12));
        prop_assert!((b.nominal()[0] - (lo + width / 2.0)).abs() < 1e-12);
    }

    /// The simulated flow with a fixed parameter equals the flow of the
    /// parameter-substituted system.
    #[test]
    fn parameter_substitution_consistency(u in 0.5f64..2.0, x0 in 0.5f64..2.0) {
        // ẋ = −u·x² (polynomial, nonlinear).
        let f = vec![Polynomial::from_terms(2, &[(&[2, 1], -1.0)])];
        let sys = HybridSystem::with_params(
            1,
            vec![Mode::new("m", f)],
            vec![],
            ParamBox::new(vec![0.1], vec![3.0]),
        );
        let sim = Simulator::new(&sys).with_step(1e-3).with_params(vec![u]);
        let arc = sim.simulate(&[x0], 0, 1.0);
        // Analytic solution of ẋ = −u x²: x(t) = x0 / (1 + u x0 t).
        let expect = x0 / (1.0 + u * x0);
        prop_assert!((arc.final_state()[0] - expect).abs() < 1e-5);
    }
}
