//! Figure 2 bench: the kernels behind the third-order attractive invariant
//! — one Lyapunov-synthesis SDP (nominal, degree 4), one level-probe
//! inclusion SDP, and the level-curve tracing. Regenerate the full figure
//! with `reproduce -- --only fig2`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cppll_bench::contour::trace_sublevel_boundary;
use cppll_pll::{PllModelBuilder, PllOrder, UncertaintySelection};
use cppll_poly::Polynomial;
use cppll_sos::{check_inclusion, InclusionOptions};
use cppll_verify::{LyapunovOptions, LyapunovSynthesizer};

fn bench(c: &mut Criterion) {
    let model = PllModelBuilder::new(PllOrder::Third)
        .with_uncertainty(UncertaintySelection::Nominal)
        .build();
    // Precompute a certificate once for the probe/tracing benches.
    let certs = LyapunovSynthesizer::new(model.system())
        .synthesize_auto(&LyapunovOptions::degree(4))
        .expect("nominal third order is feasible");
    let v = certs.for_mode(0).clone();
    let n = v.nvars();
    let level = &v - &Polynomial::constant(n, 1.0);

    let mut g = c.benchmark_group("fig2");
    g.sample_size(10);
    g.bench_function("lyapunov_synthesis_deg4_nominal", |b| {
        b.iter(|| {
            let r = LyapunovSynthesizer::new(model.system())
                .synthesize_auto(&LyapunovOptions::degree(4));
            black_box(r.is_ok())
        });
    });
    g.bench_function("level_probe_inclusion", |b| {
        // One bisection probe: {V ≤ 1} ⊆ {e ≤ θmax}.
        let e = Polynomial::var(n, 2);
        let boundary = &Polynomial::constant(n, 2.0) - &e;
        b.iter(|| {
            black_box(check_inclusion(
                black_box(&level),
                &boundary.scale(-1.0),
                &[],
                &InclusionOptions::default(),
            ))
        });
    });
    g.bench_function("trace_level_curve_96", |b| {
        b.iter(|| black_box(trace_sublevel_boundary(&level, 0, 1, 96, 50.0, "ai")));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
