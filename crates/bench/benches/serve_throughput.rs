//! Service-throughput bench for `cppll-serve`: an in-process daemon pushed
//! through its real HTTP front door. Measures sustained jobs/second over a
//! batch of distinct toy verification specs, and the latency of a
//! certificate-cache hit (a repeat spec must be answered without touching a
//! worker). Results merge into the `serve` section of `BENCH_SDP.json`.

use std::time::{Duration, Instant};

use cppll_json::ObjectBuilder;
use cppll_serve::{client_request, ServeOptions, Server};

const JOBS: usize = 96;
const WORKERS: usize = 4;

/// A one-state contracting toy spec; `seed` perturbs the initial radius so
/// every job has a distinct problem fingerprint.
fn toy_body(seed: usize) -> String {
    format!(
        concat!(
            r#"{{"kind":"verify","spec":{{"states":1,"#,
            r#""modes":[{{"name":"only","flow":["-1 x0"]}}],"#,
            r#""boundary":["2 - 1 x0","2 + 1 x0"],"initial_radii":[{}]}}}}"#,
        ),
        1.0 + seed as f64 / 256.0
    )
}

fn inflight(addr: &str) -> usize {
    let (_, body) = client_request(addr, "GET", "/jobs", None).expect("GET /jobs");
    body.split("\"inflight\":")
        .nth(1)
        .and_then(|s| s.split('}').next())
        .and_then(|s| s.trim().parse().ok())
        .expect("inflight count in /jobs response")
}

fn main() {
    let runs_dir = std::env::temp_dir().join("cppll-serve-bench");
    let _ = std::fs::remove_dir_all(&runs_dir);
    let server = Server::start(ServeOptions {
        workers: WORKERS,
        queue_capacity: JOBS + 8,
        runs_dir,
        ..ServeOptions::default()
    })
    .expect("daemon start");
    let addr = server.addr().to_string();

    // Sustained throughput: distinct specs, admission must never shed load
    // (the queue is sized for the whole batch).
    let started = Instant::now();
    for seed in 0..JOBS {
        let (status, body) =
            client_request(&addr, "POST", "/jobs", Some(&toy_body(seed))).expect("POST /jobs");
        assert_eq!(status, 202, "job {seed} not admitted: {body}");
    }
    let submitted = started.elapsed();
    while inflight(&addr) > 0 {
        std::thread::sleep(Duration::from_millis(10));
    }
    let wall = started.elapsed().as_secs_f64();
    let throughput = JOBS as f64 / wall;

    // Cache hit: a repeat spec is answered 200 from the certificate cache.
    let hit_started = Instant::now();
    let (status, body) =
        client_request(&addr, "POST", "/jobs", Some(&toy_body(0))).expect("repeat POST /jobs");
    let hit = hit_started.elapsed().as_secs_f64();
    assert_eq!(status, 200, "repeat spec must hit the cache: {body}");
    assert!(body.contains("\"cached\":true"), "{body}");
    assert!(hit < 1.0, "cache hit took {hit:.3}s — lookup regressed");

    server.shutdown();
    server.join();

    println!(
        "[serve: {JOBS} jobs on {WORKERS} workers in {wall:.2}s \
         ({throughput:.1} jobs/s, submit burst {:.0}ms, cache hit {:.1}ms)]",
        submitted.as_secs_f64() * 1e3,
        hit * 1e3
    );
    let report = ObjectBuilder::new()
        .field("jobs", JOBS)
        .field("workers", WORKERS)
        .field("wall_seconds", wall)
        .field("jobs_per_second", throughput)
        .field("submit_burst_seconds", submitted.as_secs_f64())
        .field("cache_hit_seconds", hit)
        .build();
    let path = cppll_bench::bench_sdp_json_path();
    match cppll_bench::merge_bench_sdp(&path, "serve", report) {
        Ok(()) => println!("[saved serve timings to {}]", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}
