//! Substrate benches: the numerical kernels everything sits on — dense
//! factorisations, polynomial arithmetic, the SDP interior-point solver and
//! the hybrid simulator.

use criterion::{criterion_group, Criterion};
use std::hint::black_box;

use cppll_hybrid::Simulator;
use cppll_linalg::Matrix;
use cppll_pll::{cyclic_automaton, PllOrder, TableOneParams};
use cppll_poly::{monomials_up_to, Polynomial};
use cppll_sdp::{assemble_schur_dense_for_tests, assemble_schur_for_tests, SdpProblem, SolverOptions};

fn spd(n: usize) -> Matrix {
    let mut a = Matrix::zeros(n, n);
    let mut state = 0x2545F4914F6CDD1Du64;
    let mut rng = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    };
    for c in 0..n {
        for r in 0..n {
            a[(r, c)] = rng();
        }
    }
    let mut m = a.matmul(&a.transpose());
    for i in 0..n {
        m[(i, i)] += n as f64;
    }
    m
}

fn dense_poly(nvars: usize, deg: u32) -> Polynomial {
    let mut p = Polynomial::zero(nvars);
    for (k, m) in monomials_up_to(nvars, deg).into_iter().enumerate() {
        p.add_term(m, 1.0 / (k as f64 + 1.0));
    }
    p
}

/// A structured multi-block SDP mirroring the solver's SOS workload: several
/// Gram blocks, each touched by a band of sparse coefficient-matching
/// constraints. Returns the problem plus SPD iterate pairs for the Schur
/// assembly benchmarks.
fn schur_fixture(blocks: usize, n: usize, cons_per_block: usize) -> (SdpProblem, Vec<Matrix>, Vec<Matrix>) {
    let mut p = SdpProblem::new();
    let ids: Vec<_> = (0..blocks).map(|_| p.add_psd_block(n)).collect();
    for b in &ids {
        p.set_block_cost_identity(*b, 1.0);
    }
    for (j, b) in ids.iter().enumerate() {
        for k in 0..cons_per_block {
            let c = p.add_constraint(1.0 + k as f64 / 8.0);
            // Sparse support: a short diagonal band starting at a varying row.
            let r0 = (k * 3) % n;
            p.set_entry(c, *b, r0, r0, 2.0);
            if r0 + 1 < n {
                p.set_entry(c, *b, r0, r0 + 1, 0.5 + j as f64 / 16.0);
            }
        }
    }
    let x: Vec<Matrix> = (0..blocks).map(|_| spd(n)).collect();
    let sm: Vec<Matrix> = (0..blocks).map(|_| spd(n)).collect();
    (p, x, sm)
}

/// Block-diagonal quasidefinite matrix with a dense arrowhead tail — the
/// shape of the solver's KKT systems, where the zero-multiplier skip in the
/// packed LDLᵀ does its work.
fn kkt_fixture(blocks: usize, nb: usize, tail: usize) -> Matrix {
    let n = blocks * nb + tail;
    let mut a = Matrix::zeros(n, n);
    for b in 0..blocks {
        let lo = b * nb;
        let blk = spd(nb);
        for r in 0..nb {
            for c in 0..nb {
                a[(lo + r, lo + c)] = blk[(r, c)];
            }
        }
    }
    for i in blocks * nb..n {
        for j in 0..blocks * nb {
            let v = ((i * 37 + j * 11) % 17) as f64 / 17.0 - 0.5;
            a[(i, j)] = v;
            a[(j, i)] = v;
        }
        a[(i, i)] = -(1.0 + (i % 7) as f64);
    }
    a
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("linalg");
    for n in [16usize, 64] {
        let a = spd(n);
        g.bench_function(format!("cholesky_{n}"), |b| {
            b.iter(|| black_box(black_box(&a).cholesky().unwrap()))
        });
        g.bench_function(format!("eigen_{n}"), |b| {
            b.iter(|| black_box(black_box(&a).symmetric_eigen()))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("poly");
    let p = dense_poly(3, 4);
    let q = dense_poly(3, 4);
    g.bench_function("mul_deg4_3vars", |b| {
        b.iter(|| black_box(black_box(&p) * black_box(&q)))
    });
    let f: Vec<Polynomial> = (0..3)
        .map(|i| dense_poly(3, 2).scale((i + 1) as f64))
        .collect();
    g.bench_function("lie_derivative_deg4", |b| {
        b.iter(|| black_box(p.lie_derivative(black_box(&f))))
    });
    let shift = [0.1, -0.2, 0.3];
    g.bench_function("affine_shift_deg4", |b| {
        b.iter(|| black_box(p.shift(black_box(&shift))))
    });
    g.bench_function("monomials_up_to_deg8_6vars", |b| {
        b.iter(|| black_box(monomials_up_to(black_box(6), black_box(8))))
    });
    g.finish();

    let mut g = c.benchmark_group("sdp");
    g.sample_size(20);
    g.bench_function("lovasz_theta_c5", |b| {
        b.iter(|| {
            let mut prob = SdpProblem::new();
            let blk = prob.add_psd_block(5);
            for r in 0..5 {
                for cc in r..5 {
                    prob.set_cost_entry(blk, r, cc, -1.0);
                }
            }
            let t = prob.add_constraint(1.0);
            for i in 0..5 {
                prob.set_entry(t, blk, i, i, 1.0);
            }
            for i in 0..5 {
                let e = prob.add_constraint(0.0);
                prob.set_entry(e, blk, i, (i + 1) % 5, 1.0);
            }
            black_box(prob.solve(&SolverOptions::default()).primal_objective)
        })
    });
    g.finish();

    let mut g = c.benchmark_group("hybrid");
    g.sample_size(10);
    let pll = cyclic_automaton(PllOrder::Third, &TableOneParams::third_order());
    g.bench_function("cyclic_pfd_50_units", |b| {
        let sim = Simulator::new(pll.system())
            .with_step(2e-3)
            .with_thinning(100)
            .with_max_jumps(100_000);
        b.iter(|| {
            let arc = sim.simulate(black_box(&[0.0, 0.3, 0.0, 0.2]), 0, 50.0);
            black_box(arc.jumps())
        })
    });
    g.finish();

    let mut g = c.benchmark_group("schur");
    let (p, x, sm) = schur_fixture(12, 24, 20);
    g.bench_function("assemble_sparse_12x24", |b| {
        b.iter(|| black_box(assemble_schur_for_tests(black_box(&p), &x, &sm, 1)))
    });
    g.bench_function("assemble_dense_12x24", |b| {
        b.iter(|| black_box(assemble_schur_dense_for_tests(black_box(&p), &x, &sm, 1)))
    });
    g.finish();

    let mut g = c.benchmark_group("ldlt");
    let kkt = kkt_fixture(8, 40, 24);
    g.bench_function("packed_serial_344", |b| {
        b.iter(|| black_box(cppll_linalg::Ldlt::new(black_box(&kkt), 1e-12).unwrap()))
    });
    g.bench_function("packed_parallel_344", |b| {
        b.iter(|| black_box(cppll_linalg::Ldlt::new_parallel(black_box(&kkt), 1e-12, 0).unwrap()))
    });
    g.bench_function("reference_344", |b| {
        b.iter(|| black_box(cppll_linalg::Ldlt::new_reference(black_box(&kkt), 1e-12).unwrap()))
    });
    g.finish();
}

/// Best-of-`reps` wall-clock seconds of `f`.
fn best_of<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = std::time::Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// Times the cache-blocked kernels against their naive references and
/// merges the numbers into the `kernels` section of `BENCH_SDP.json`,
/// alongside the pipeline section written by `reproduce --only bench`.
fn write_kernel_report() {
    use cppll_json::ObjectBuilder;

    const N: usize = 96; // crosses both the matmul (32) and Cholesky (48) tiles
    let a = spd(N);
    let b = spd(N);
    let mut out = Matrix::zeros(N, N);
    let reps = 5;
    let report = ObjectBuilder::new()
        .field("n", N)
        .field(
            "matmul_blocked_seconds",
            best_of(reps, || {
                a.matmul_into(&b, &mut out);
                black_box(&out);
            }),
        )
        .field(
            "matmul_naive_seconds",
            best_of(reps, || {
                black_box(black_box(&a).matmul_naive(&b));
            }),
        )
        .field(
            "cholesky_blocked_seconds",
            best_of(reps, || {
                black_box(black_box(&a).cholesky().unwrap());
            }),
        )
        .field(
            "cholesky_unblocked_seconds",
            best_of(reps, || {
                black_box(cppll_linalg::Cholesky::new_unblocked(black_box(&a)).unwrap());
            }),
        )
        .build();

    // Sparse-vs-dense Schur assembly and the packed LDLᵀ kernels, with a
    // bit-identity guard: the sparse/parallel paths must reproduce their
    // references exactly, or the timing comparison is meaningless.
    let (sp, sx, ss) = schur_fixture(12, 24, 20);
    let sparse_m = assemble_schur_for_tests(&sp, &sx, &ss, 1);
    let dense_m = assemble_schur_dense_for_tests(&sp, &sx, &ss, 1);
    assert!(
        sparse_m
            .as_slice()
            .iter()
            .zip(dense_m.as_slice())
            .all(|(a, b)| a.to_bits() == b.to_bits()),
        "sparse Schur assembly diverged from the dense reference"
    );
    let kkt = kkt_fixture(8, 40, 24);
    let serial_f = cppll_linalg::Ldlt::new(&kkt, 1e-12).unwrap();
    let reference_f = cppll_linalg::Ldlt::new_reference(&kkt, 1e-12).unwrap();
    assert_eq!(serial_f.inertia(), reference_f.inertia());
    let probe: Vec<f64> = (0..kkt.nrows()).map(|i| (i as f64).sin()).collect();
    assert!(
        serial_f
            .solve(&probe)
            .iter()
            .zip(reference_f.solve(&probe))
            .all(|(a, b)| a.to_bits() == b.to_bits()),
        "packed LDLT solve diverged from the reference"
    );
    let report = ObjectBuilder::new()
        .field("base", report)
        .field(
            "schur",
            ObjectBuilder::new()
                .field("blocks", 12usize)
                .field("block_dim", 24usize)
                .field("constraints", 12usize * 20)
                .field(
                    "assemble_sparse_seconds",
                    best_of(reps, || {
                        black_box(assemble_schur_for_tests(&sp, &sx, &ss, 1));
                    }),
                )
                .field(
                    "assemble_dense_seconds",
                    best_of(reps, || {
                        black_box(assemble_schur_dense_for_tests(&sp, &sx, &ss, 1));
                    }),
                )
                .build(),
        )
        .field(
            "ldlt",
            ObjectBuilder::new()
                .field("dim", kkt.nrows())
                .field("lower_nonzeros", serial_f.lower_nonzeros())
                .field(
                    "packed_serial_seconds",
                    best_of(reps, || {
                        black_box(cppll_linalg::Ldlt::new(&kkt, 1e-12).unwrap());
                    }),
                )
                .field(
                    "packed_parallel_seconds",
                    best_of(reps, || {
                        black_box(cppll_linalg::Ldlt::new_parallel(&kkt, 1e-12, 0).unwrap());
                    }),
                )
                .field(
                    "reference_seconds",
                    best_of(reps, || {
                        black_box(cppll_linalg::Ldlt::new_reference(&kkt, 1e-12).unwrap());
                    }),
                )
                .build(),
        )
        .build();
    let path = cppll_bench::bench_sdp_json_path();
    match cppll_bench::merge_bench_sdp(&path, "kernels", report) {
        Ok(()) => println!("[saved kernel timings to {}]", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

/// Trace-overhead guard for the telemetry subsystem: solving a fixed SDP
/// with an `iter`-level tracer attached must cost at most 5% wall-clock
/// over the untraced solve, and must not perturb the numerics by a single
/// bit (the tracer only *reads* already-computed iterate statistics). The
/// problem is sized so per-iteration linear algebra dominates the one
/// telemetry instant per iteration, and best-of timing over repeated
/// batches damps machine noise.
fn assert_trace_overhead_bounded() {
    use cppll_verify::{TraceLevel, Tracer};

    // theta(C_40): 41 equality constraints on one 40×40 PSD block.
    let n = 40usize;
    let mut prob = SdpProblem::new();
    let blk = prob.add_psd_block(n);
    for r in 0..n {
        for c in r..n {
            prob.set_cost_entry(blk, r, c, -1.0);
        }
    }
    let t = prob.add_constraint(1.0);
    for i in 0..n {
        prob.set_entry(t, blk, i, i, 1.0);
    }
    for i in 0..n {
        let e = prob.add_constraint(0.0);
        prob.set_entry(e, blk, i, (i + 1) % n, 1.0);
    }

    let reps = 7;
    let batch = 3;
    let untraced_obj = prob.solve(&SolverOptions::default()).primal_objective;
    let untraced = best_of(reps, || {
        for _ in 0..batch {
            black_box(prob.solve(&SolverOptions::default()).primal_objective);
        }
    });
    let mut traced_obj = f64::NAN;
    let mut iteration_events = 0usize;
    let traced = best_of(reps, || {
        let tracer = Tracer::new(TraceLevel::Iter);
        let opt = SolverOptions {
            trace: Some(tracer.clone()),
            ..SolverOptions::default()
        };
        for _ in 0..batch {
            traced_obj = black_box(prob.solve(&opt).primal_objective);
        }
        iteration_events = tracer.event_count();
    });
    assert_eq!(
        untraced_obj.to_bits(),
        traced_obj.to_bits(),
        "iter-level tracing perturbed the solve: {untraced_obj:?} vs {traced_obj:?}"
    );
    assert!(
        iteration_events > 0,
        "iter-level tracer recorded no events on a converging solve"
    );
    let overhead = traced / untraced - 1.0;
    assert!(
        overhead <= 0.05,
        "iter-level tracing overhead {:.1}% exceeds the 5% budget \
         (untraced {:.3}ms, traced {:.3}ms per batch)",
        overhead * 100.0,
        untraced * 1e3,
        traced * 1e3
    );
    println!(
        "[trace overhead: {:+.2}% at level=iter ({} events/batch, budget 5%)]",
        overhead * 100.0,
        iteration_events
    );
}

/// Timing assertion for the one-pass grlex `monomials_up_to`: enumerating a
/// deg-10 basis in 7 variables (19 448 monomials) must stay comfortably
/// sub-second, and the single pass must agree with degree-by-degree
/// concatenation. The bound is ~100× the observed cost so it only trips on
/// a genuine complexity regression (e.g. reverting to per-degree allocation
/// with quadratic copying), never on machine noise.
fn assert_monomial_enumeration_fast() {
    let (nvars, deg) = (7, 10u32);
    let secs = best_of(5, || {
        black_box(monomials_up_to(black_box(nvars), black_box(deg)));
    });
    let basis = monomials_up_to(nvars, deg);
    let reference: Vec<_> = (0..=deg)
        .flat_map(|d| cppll_poly::monomials_of_degree(nvars, d))
        .collect();
    assert_eq!(basis, reference, "one-pass grlex enumeration diverged");
    assert!(
        secs < 0.5,
        "monomials_up_to({nvars}, {deg}) took {secs:.3}s — one-pass enumeration regressed"
    );
    println!(
        "[monomials_up_to({nvars}, {deg}): {} monomials in {:.1}ms]",
        basis.len(),
        secs * 1e3
    );
}

criterion_group!(benches, bench);

fn main() {
    benches();
    write_kernel_report();
    assert_trace_overhead_bounded();
    assert_monomial_enumeration_fast();
}
