//! Table 1 bench: parameter construction, interval scaling, and model
//! building — the (cheap) inputs of every experiment. Regenerate the actual
//! table with `cargo run --release -p cppll-bench --bin reproduce -- --only table1`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cppll_pll::{PllModelBuilder, PllOrder, ScaledCoefficients, TableOneParams};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1");
    g.bench_function("scaled_coefficients_third", |b| {
        let p = TableOneParams::third_order();
        b.iter(|| black_box(ScaledCoefficients::from_params(black_box(&p))));
    });
    g.bench_function("scaled_coefficients_fourth", |b| {
        let p = TableOneParams::fourth_order();
        b.iter(|| black_box(ScaledCoefficients::from_params(black_box(&p))));
    });
    g.bench_function("build_third_order_model", |b| {
        b.iter(|| black_box(PllModelBuilder::new(PllOrder::Third).build()));
    });
    g.bench_function("build_fourth_order_model", |b| {
        b.iter(|| black_box(PllModelBuilder::new(PllOrder::Fourth).build()));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
