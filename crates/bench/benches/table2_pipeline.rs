//! Table 2 bench: the end-to-end pipeline on a toy hybrid system — the same
//! step structure as the PLL benchmarks (certificates → level curves →
//! advection → inclusion) at bench-friendly cost. Regenerate the real
//! table with `reproduce -- --only table2` (runs the full PLL pipelines and
//! prints our seconds next to the paper's).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cppll_hybrid::{HybridSystem, Jump, Mode};
use cppll_poly::Polynomial;
use cppll_verify::{InevitabilityVerifier, PipelineOptions, Region};

fn two_mode_spiral() -> HybridSystem {
    let right = vec![
        Polynomial::from_terms(2, &[(&[1, 0], -1.0), (&[0, 1], 1.0)]),
        Polynomial::from_terms(2, &[(&[1, 0], -1.0), (&[0, 1], -1.0)]),
    ];
    let left = vec![
        Polynomial::from_terms(2, &[(&[1, 0], -1.0), (&[0, 1], 0.5)]),
        Polynomial::from_terms(2, &[(&[1, 0], -0.5), (&[0, 1], -1.0)]),
    ];
    let x = Polynomial::var(2, 0);
    let m0 = Mode::new("right", right).with_flow_set(vec![x.clone()]);
    let m1 = Mode::new("left", left).with_flow_set(vec![x.scale(-1.0)]);
    let guard = vec![Polynomial::var(2, 0)];
    let jumps = vec![
        Jump::identity(0, 1).with_guard_eq(guard.clone()),
        Jump::identity(1, 0).with_guard_eq(guard),
    ];
    HybridSystem::new(2, vec![m0, m1], jumps)
}

fn bench(c: &mut Criterion) {
    let sys = two_mode_spiral();
    let boundary = {
        let mut b = Vec::new();
        for i in 0..2 {
            let xi = Polynomial::var(2, i);
            b.push(&Polynomial::constant(2, 3.0) - &xi);
            b.push(&Polynomial::constant(2, 3.0) + &xi);
        }
        b
    };
    let mut g = c.benchmark_group("table2");
    g.sample_size(10);
    g.bench_function("toy_pipeline_end_to_end", |b| {
        b.iter(|| {
            let verifier = InevitabilityVerifier::new(&sys, boundary.clone(), Region::ball(2, 2.0));
            let report = verifier
                .verify(&PipelineOptions::degree(2))
                .expect("toy verifies");
            black_box(report.verdict.is_verified())
        });
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
