//! Figure 5 bench: the escape-certificate kernel (Proposition 1) that closed
//! the paper's fourth-order argument. Measures one synthesis on the
//! third-order saturated mode's leftover region. Regenerate the figure with
//! `reproduce -- --only fig5`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cppll_pll::{PllModelBuilder, PllOrder};
use cppll_poly::Polynomial;
use cppll_verify::{EscapeOptions, EscapeSynthesizer};

fn bench(c: &mut Criterion) {
    let model = PllModelBuilder::new(PllOrder::Third).build();
    let n = 3;
    // Leftover-style region: inside the initial ellipsoid, outside a bowl.
    let ell = {
        let mut p = Polynomial::constant(n, -1.0);
        for (i, r) in [1.5f64, 1.5, 1.9].iter().enumerate() {
            let xi = Polynomial::var(n, i);
            p = &p + &(&xi * &xi).scale(1.0 / (r * r));
        }
        p
    };
    let bowl = &Polynomial::norm_squared(n) - &Polynomial::constant(n, 1.0);
    let set = vec![ell.scale(-1.0), bowl];

    let mut g = c.benchmark_group("fig5");
    g.sample_size(10);
    g.bench_function("escape_synthesis_up_mode_deg4", |b| {
        b.iter(|| {
            let r = EscapeSynthesizer::new(model.system()).synthesize(
                model.up_mode(),
                black_box(&set),
                &EscapeOptions::degree(4),
            );
            black_box(r.is_ok())
        });
    });
    g.bench_function("escape_synthesis_up_mode_deg2", |b| {
        b.iter(|| {
            let r = EscapeSynthesizer::new(model.system()).synthesize(
                model.up_mode(),
                black_box(&set),
                &EscapeOptions::degree(2),
            );
            black_box(r.is_ok())
        });
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
