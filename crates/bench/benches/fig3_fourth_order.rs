//! Figure 3 bench: fourth-order kernels. The full degree-4 robust synthesis
//! takes minutes (Table 2's dominant row), so the bench measures the
//! *degree-2 relaxation probe* — the same program shape at the tractable
//! degree — plus the simulation oracle. Regenerate the figure with
//! `reproduce -- --only fig3`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cppll_hybrid::Simulator;
use cppll_pll::{PllModelBuilder, PllOrder, UncertaintySelection};
use cppll_verify::{LyapunovOptions, LyapunovSynthesizer};

fn bench(c: &mut Criterion) {
    let model = PllModelBuilder::new(PllOrder::Fourth)
        .with_uncertainty(UncertaintySelection::Nominal)
        .build();
    let mut g = c.benchmark_group("fig3");
    g.sample_size(10);
    g.bench_function("lyapunov_probe_deg2_fourth_order", |b| {
        // Degree 2 is infeasible for the saturated modes; the probe measures
        // the full compile+solve round trip that the degree ladder performs.
        b.iter(|| {
            let r =
                LyapunovSynthesizer::new(model.system()).synthesize(&LyapunovOptions::degree(2));
            black_box(r.is_err())
        });
    });
    g.bench_function("simulate_fourth_order_lock_50units", |b| {
        let sim = Simulator::new(model.system())
            .with_step(1e-2)
            .with_thinning(50);
        b.iter(|| {
            let arc = sim.simulate(black_box(&[0.1, 0.1, -0.1, 0.3]), 0, 50.0);
            black_box(arc.len())
        });
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
