//! Figure 4 bench: the bounded-advection kernels — one piecewise advection
//! step (exact polynomial composition), the guard-mismatch diagnostic, one
//! SOS merge (Eq.-6 analogue) and one front-inside-AI inclusion check.
//! Regenerate the figure with `reproduce -- --only fig4`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cppll_pll::{PllModelBuilder, PllOrder};
use cppll_poly::Polynomial;
use cppll_sos::{check_inclusion, InclusionOptions};
use cppll_verify::{Advection, AdvectionOptions, Region};

fn bench(c: &mut Criterion) {
    let model = PllModelBuilder::new(PllOrder::Third).build();
    let adv = Advection::new(model.system());
    let opt = AdvectionOptions {
        h: 0.1,
        error_box: vec![1.9, 1.9, 2.4],
        ..Default::default()
    };
    let initial = Region::ellipsoid(&[1.5, 1.5, 1.9]);
    let pieces = vec![initial.level().clone(); 3];

    let mut g = c.benchmark_group("fig4");
    g.bench_function("piecewise_advection_step", |b| {
        b.iter(|| black_box(adv.step_pieces(black_box(&pieces), &opt)));
    });
    g.bench_function("guard_mismatch_diagnostic", |b| {
        let stepped = adv.step_pieces(&pieces, &opt);
        b.iter(|| black_box(adv.guard_mismatch(black_box(&stepped), &opt)));
    });
    g.bench_function("taylor_error_estimate", |b| {
        b.iter(|| black_box(adv.estimate_taylor_error(initial.level(), &opt)));
    });
    g.finish();

    let mut g2 = c.benchmark_group("fig4_sdp");
    g2.sample_size(10);
    g2.bench_function("sos_merge_step", |b| {
        let mut opt2 = opt.clone();
        for (i, r) in [1.9f64, 1.9, 2.4].iter().enumerate() {
            let xi = Polynomial::var(3, i);
            opt2.bounding.push(&Polynomial::constant(3, *r) - &xi);
            opt2.bounding.push(&Polynomial::constant(3, *r) + &xi);
        }
        b.iter(|| black_box(adv.step(initial.level(), &opt2).is_some()));
    });
    g2.bench_function("front_inclusion_check", |b| {
        // Inclusion of the initial front into a quartic bowl.
        let bowl = {
            let n2 = Polynomial::norm_squared(3);
            &(&n2 * &n2).scale(0.05) + &(&n2 - &Polynomial::constant(3, 40.0))
        };
        b.iter(|| {
            black_box(check_inclusion(
                initial.level(),
                &bowl,
                &[],
                &InclusionOptions::default(),
            ))
        });
    });
    g2.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
