//! Level-curve extraction for the paper's figures.
//!
//! The figures show sublevel sets projected onto coordinate planes. We
//! reproduce them as point series: the set `{p(x) ≤ 0}` is sliced by the
//! plane spanned by two chosen coordinates (the remaining coordinates set to
//! zero — the sets are neighbourhoods of the origin, so the zero-slice is
//! the natural 2-D view) and the boundary is traced radially.

use cppll_json::{ObjectBuilder, ToJson, Value};
use cppll_poly::Polynomial;

/// A traced planar curve: one point per scan angle.
#[derive(Debug, Clone)]
pub struct Curve {
    /// Label, e.g. `"AI (v1, v2)"`.
    pub label: String,
    /// Index of the coordinate on the horizontal axis.
    pub x_axis: usize,
    /// Index of the coordinate on the vertical axis.
    pub y_axis: usize,
    /// Boundary points `(x, y)`.
    pub points: Vec<(f64, f64)>,
}

impl ToJson for Curve {
    fn to_json(&self) -> Value {
        ObjectBuilder::new()
            .field("label", &self.label)
            .field("x_axis", self.x_axis)
            .field("y_axis", self.y_axis)
            .field("points", &self.points)
            .build()
    }
}

impl Curve {
    /// Maximum distance of the curve from the origin.
    pub fn max_radius(&self) -> f64 {
        self.points
            .iter()
            .map(|(x, y)| (x * x + y * y).sqrt())
            .fold(0.0, f64::max)
    }

    /// Extent along the horizontal axis (max |x|).
    pub fn x_extent(&self) -> f64 {
        self.points.iter().map(|(x, _)| x.abs()).fold(0.0, f64::max)
    }

    /// Extent along the vertical axis (max |y|).
    pub fn y_extent(&self) -> f64 {
        self.points.iter().map(|(_, y)| y.abs()).fold(0.0, f64::max)
    }

    /// Renders the curve into a fixed-size ASCII grid (rows top to bottom).
    pub fn ascii_plot(&self, half_width: f64, cols: usize, rows: usize) -> Vec<String> {
        let mut grid = vec![vec![b' '; cols]; rows];
        for &(x, y) in &self.points {
            let cx = ((x / half_width + 1.0) * 0.5 * (cols as f64 - 1.0)).round();
            let cy = ((1.0 - (y / half_width + 1.0) * 0.5) * (rows as f64 - 1.0)).round();
            if cx >= 0.0 && cy >= 0.0 && (cx as usize) < cols && (cy as usize) < rows {
                grid[cy as usize][cx as usize] = b'*';
            }
        }
        grid.into_iter()
            .map(|row| String::from_utf8(row).expect("ascii"))
            .collect()
    }
}

/// Traces the boundary of `{p ≤ 0}` in the plane of coordinates
/// `(x_axis, y_axis)` (other coordinates zero) by radial bisection.
///
/// `angles` scan directions are used; rays on which the set is empty (the
/// origin itself is outside) or unbounded (no crossing below `r_max`) yield
/// no point.
///
/// # Panics
///
/// Panics if the axes coincide or exceed the polynomial's variable count.
pub fn trace_sublevel_boundary(
    p: &Polynomial,
    x_axis: usize,
    y_axis: usize,
    angles: usize,
    r_max: f64,
    label: impl Into<String>,
) -> Curve {
    let n = p.nvars();
    assert!(x_axis < n && y_axis < n && x_axis != y_axis, "bad axes");
    let mut points = Vec::with_capacity(angles);
    for k in 0..angles {
        let phi = 2.0 * std::f64::consts::PI * (k as f64) / (angles as f64);
        let dir = (phi.cos(), phi.sin());
        let eval_at = |r: f64| {
            let mut x = vec![0.0; n];
            x[x_axis] = r * dir.0;
            x[y_axis] = r * dir.1;
            p.eval(&x)
        };
        if eval_at(0.0) > 0.0 || eval_at(r_max) <= 0.0 {
            continue; // origin outside, or set unbounded along this ray
        }
        let mut lo = 0.0;
        let mut hi = r_max;
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if eval_at(mid) <= 0.0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        points.push((lo * dir.0, lo * dir.1));
    }
    Curve {
        label: label.into(),
        x_axis,
        y_axis,
        points,
    }
}

/// Traces the certified/uncertified boundary of a sweep atlas grid as a
/// point series: one point at the midpoint of every grid edge whose two
/// cells disagree on certification.
///
/// `xs`/`ys` are the axis values by index and `certified` the row-major
/// (`iy·nx + ix`) mask. 1-D sweeps pass `ys = &[0.0]`. The resulting curve
/// uses axis indices 0/1 (the sweep's own axes, not state coordinates).
///
/// # Panics
///
/// Panics when `certified.len() != xs.len() * ys.len()`.
pub fn grid_verdict_boundary(
    xs: &[f64],
    ys: &[f64],
    certified: &[bool],
    label: impl Into<String>,
) -> Curve {
    let (nx, ny) = (xs.len(), ys.len());
    assert_eq!(certified.len(), nx * ny, "mask does not match the grid");
    let mut points = Vec::new();
    for iy in 0..ny {
        for ix in 0..nx {
            let here = certified[iy * nx + ix];
            if ix + 1 < nx && certified[iy * nx + ix + 1] != here {
                points.push((0.5 * (xs[ix] + xs[ix + 1]), ys[iy]));
            }
            if iy + 1 < ny && certified[(iy + 1) * nx + ix] != here {
                points.push((xs[ix], 0.5 * (ys[iy] + ys[iy + 1])));
            }
        }
    }
    Curve {
        label: label.into(),
        x_axis: 0,
        y_axis: 1,
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_circle_contour() {
        let p = &Polynomial::norm_squared(3) - &Polynomial::constant(3, 1.0);
        let c = trace_sublevel_boundary(&p, 0, 1, 64, 5.0, "circle");
        assert_eq!(c.points.len(), 64);
        for (x, y) in &c.points {
            let r = (x * x + y * y).sqrt();
            assert!((r - 1.0).abs() < 1e-9, "r = {r}");
        }
        assert!((c.max_radius() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ellipse_extents() {
        // x²/4 + y² ≤ 1 in the (0, 1) plane.
        let p = Polynomial::from_terms(2, &[(&[2, 0], 0.25), (&[0, 2], 1.0), (&[0, 0], -1.0)]);
        let c = trace_sublevel_boundary(&p, 0, 1, 128, 10.0, "ellipse");
        assert!((c.x_extent() - 2.0).abs() < 1e-6);
        assert!((c.y_extent() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn empty_ray_skipped() {
        // Set {x ≥ 1} ∩ slice… p = 1 − x: origin has p = 1 > 0 ⇒ no points.
        let p = &Polynomial::constant(2, 1.0) - &Polynomial::var(2, 0);
        let c = trace_sublevel_boundary(&p, 0, 1, 16, 5.0, "halfplane");
        assert!(c.points.is_empty());
    }

    #[test]
    fn grid_boundary_traces_a_vertical_line() {
        // 3×2 grid, left column certified: two vertical-edge crossings at
        // the midpoint between x = 0 and x = 1.
        let xs = [0.0, 1.0, 2.0];
        let ys = [0.0, 1.0];
        let certified = [true, false, false, true, false, false];
        let c = grid_verdict_boundary(&xs, &ys, &certified, "lock region");
        assert_eq!(c.points, vec![(0.5, 0.0), (0.5, 1.0)]);
        // Uniform mask ⇒ no boundary.
        let all = [true; 6];
        assert!(grid_verdict_boundary(&xs, &ys, &all, "none").points.is_empty());
    }

    #[test]
    fn ascii_plot_dimensions() {
        let p = &Polynomial::norm_squared(2) - &Polynomial::constant(2, 1.0);
        let c = trace_sublevel_boundary(&p, 0, 1, 64, 5.0, "circle");
        let art = c.ascii_plot(2.0, 40, 20);
        assert_eq!(art.len(), 20);
        assert!(art.iter().all(|l| l.len() == 40));
        assert!(art.iter().any(|l| l.contains('*')));
    }
}
