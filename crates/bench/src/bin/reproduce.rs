//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! reproduce [--quick] [--only table1|fig2|fig3|fig4|fig5|table2|bench|ablations]
//! ```
//!
//! Prints the artefacts to stdout (tables as text, figures as extents plus
//! ASCII level curves) and writes the raw series as JSON under
//! `target/experiments/`.

use std::fs;
use std::path::PathBuf;

use cppll_bench::experiments::{self, AdvectionFigure, FigureResult};
use cppll_json::ToJson;

fn out_dir() -> PathBuf {
    let dir = PathBuf::from("target/experiments");
    let _ = fs::create_dir_all(&dir);
    dir
}

fn save_json<T: cppll_json::ToJson + ?Sized>(name: &str, value: &T) {
    let path = out_dir().join(format!("{name}.json"));
    let s = value.to_json().to_pretty_string();
    if let Err(e) = cppll_bench::write_atomic(&path, &s) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        println!("  [saved {}]", path.display());
    }
}

fn banner(title: &str) {
    println!(
        "\n=== {title} {}",
        "=".repeat(66_usize.saturating_sub(title.len()))
    );
}

fn print_figure(fig: &FigureResult) {
    for note in &fig.notes {
        println!("  {note}");
    }
    for curve in &fig.curves {
        println!("  {} — {} boundary points", curve.label, curve.points.len());
        let half = (curve.max_radius() * 1.2).max(1.0);
        for line in curve.ascii_plot(half, 58, 21) {
            println!("    |{line}|");
        }
        println!("    (window ±{half:.2})");
    }
}

fn print_advection(fig: &AdvectionFigure) {
    for note in &fig.notes {
        println!("  {note}");
    }
    println!(
        "  iterations: {}, included after: {:?}, escape certificates: {}",
        fig.iterations, fig.included_after, fig.escape_count
    );
    // Print the last plane of: initial set, every front, the AI.
    if let (Some(init), Some(ai)) = (fig.initial_curves.last(), fig.ai_curves.last()) {
        println!(
            "  outer set extent: x≤{:.2} y≤{:.2} | AI extent: x≤{:.2} y≤{:.2}",
            init.x_extent(),
            init.y_extent(),
            ai.x_extent(),
            ai.y_extent()
        );
        for (k, fronts) in fig.front_curves.iter().enumerate() {
            if let Some(c) = fronts.last() {
                println!(
                    "  front after iter {:2}: x≤{:.2} y≤{:.2}",
                    k + 1,
                    c.x_extent(),
                    c.y_extent()
                );
            }
        }
    }
}

/// Compares every freshly measured pipeline wall-clock against the committed
/// baseline snapshot (`benchmarks/bench_baseline.json`). Each problem listed
/// in the baseline section for this configuration is guarded; a problem
/// missing from the fresh rows is itself an error (a silently dropped
/// benchmark must not pass the guard). Returns an error string when any
/// measurement exceeds the allowed regression budget; `Ok(None)` when no
/// baseline is committed for this configuration.
fn check_bench_regression(rows: &[experiments::BenchSdpRow], quick: bool) -> Result<Option<String>, String> {
    const BUDGET: f64 = 1.25; // fail CI on a >25% wall-clock regression

    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../benchmarks/bench_baseline.json");
    let text = match fs::read_to_string(&path) {
        Ok(t) => t,
        Err(_) => return Ok(None), // no committed baseline: nothing to guard
    };
    let doc = cppll_json::parse(&text).map_err(|e| format!("unparseable baseline {}: {e:?}", path.display()))?;
    let section = if quick { "quick" } else { "full" };
    let Some(problems) = doc.get(section).and_then(|s| s.as_object()) else {
        return Ok(None); // baseline does not cover this configuration
    };
    let mut lines = Vec::new();
    let mut regressions = Vec::new();
    for (problem, entry) in problems {
        if problem.starts_with('_') {
            continue; // annotation keys (e.g. "_comment") are not problems
        }
        let baseline = entry
            .get("total_seconds")
            .and_then(|v| v.as_f64())
            .ok_or_else(|| {
                format!("baseline {} lacks {section}.{problem}.total_seconds", path.display())
            })?;
        let row = rows
            .iter()
            .find(|r| r.problem == *problem)
            .ok_or_else(|| format!("bench rows lack baseline problem {problem}"))?;
        let measured = row.timings.total;
        let ratio = measured / baseline;
        if ratio > BUDGET {
            regressions.push(format!(
                "{problem} regressed: {measured:.2}s vs baseline {baseline:.2}s \
                 ({ratio:.2}x > {BUDGET:.2}x budget, section {section})"
            ));
        } else {
            lines.push(format!(
                "{problem}: {measured:.2}s vs baseline {baseline:.2}s ({ratio:.2}x, budget {BUDGET:.2}x)"
            ));
        }
    }
    if !regressions.is_empty() {
        return Err(regressions.join("; "));
    }
    if lines.is_empty() {
        return Ok(None); // section present but empty: nothing guarded
    }
    Ok(Some(lines.join("\n  ")))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let only: Option<String> = args
        .iter()
        .position(|a| a == "--only")
        .and_then(|i| args.get(i + 1).cloned());
    let want = |name: &str| only.as_deref().is_none_or(|o| o == name);

    println!(
        "Reproduction harness — Ul Asad & Jones, \"Verifying inevitability of \
         phase-locking in a charge pump PLL using SOS programming\"{}",
        if quick { " [quick mode]" } else { "" }
    );

    if want("table1") {
        banner("Table 1: CP PLL parameters");
        let rows = experiments::table1();
        println!(
            "  {:<22} {:<28} {:<28}",
            "parameter", "third order", "fourth order"
        );
        for r in &rows {
            println!("  {:<22} {:<28} {:<28}", r.parameter, r.third, r.fourth);
        }
        save_json("table1", &rows);
    }

    if want("fig2") {
        banner("Figure 2: third-order attractive invariant");
        let fig = experiments::fig2(quick);
        print_figure(&fig);
        save_json("fig2", &fig);
    }

    if want("fig3") {
        banner("Figure 3: fourth-order attractive invariant");
        let fig = experiments::fig3(quick);
        print_figure(&fig);
        save_json("fig3", &fig);
    }

    if want("fig4") {
        banner("Figure 4: third-order bounded advection");
        let fig = experiments::fig4(quick);
        print_advection(&fig);
        save_json("fig4", &fig);
    }

    if want("fig5") {
        banner("Figure 5: fourth-order bounded advection");
        let fig = experiments::fig5(quick);
        print_advection(&fig);
        save_json("fig5", &fig);
        banner("Figure 5 (escape variant): leftover closed by escape certificates");
        let fig = experiments::fig5_escape_variant(quick);
        print_advection(&fig);
        save_json("fig5_escape", &fig);
    }

    if want("table2") {
        banner("Table 2: computation time of the inevitability verification");
        let t2 = experiments::table2(quick);
        println!(
            "  degrees: third = {}, fourth = {}; verified: {:?}",
            t2.degrees.0, t2.degrees.1, t2.verified
        );
        println!(
            "  supervised solves (solves/attempts): third = {}/{}, fourth = {}/{}",
            t2.solve_attempts.0 .0,
            t2.solve_attempts.0 .1,
            t2.solve_attempts.1 .0,
            t2.solve_attempts.1 .1
        );
        println!(
            "  {:<26} {:>12} {:>12} {:>14} {:>14}",
            "step", "3rd (s)", "4th (s)", "paper 3rd (s)", "paper 4th (s)"
        );
        for r in &t2.rows {
            let fmt_opt = |v: Option<f64>| v.map_or("—".to_string(), |x| format!("{x:.1}"));
            println!(
                "  {:<26} {:>12.2} {:>12.2} {:>14} {:>14}",
                r.step,
                r.third_seconds,
                r.fourth_seconds,
                fmt_opt(r.paper_third),
                fmt_opt(r.paper_fourth)
            );
        }
        save_json("table2", &t2);
    }

    if want("bench") {
        banner("SDP hot path: per-stage solver timings");
        let b = experiments::bench_sdp(quick);
        println!("  solver threads: {}", b.threads);
        for row in &b.rows {
            println!(
                "  {} — verified={}, {} solves / {} attempts",
                row.problem, row.verified, row.solves, row.attempts
            );
            if row.reduction.grams > 0 {
                println!("    reduction: {}", row.reduction);
            }
            for line in row.timings.report_lines() {
                println!("    {line}");
            }
        }
        let path = cppll_bench::bench_sdp_json_path();
        match cppll_bench::merge_bench_sdp(&path, "pipeline", b.to_json()) {
            Ok(()) => println!("  [saved {}]", path.display()),
            Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
        }
        match check_bench_regression(&b.rows, quick) {
            Ok(Some(line)) => println!("  [regression guard] {line}"),
            Ok(None) => println!("  [regression guard] no committed baseline for this configuration"),
            Err(msg) => {
                eprintln!("error: [regression guard] {msg}");
                std::process::exit(1);
            }
        }
    }

    if want("ablations") {
        banner("Ablation: certificate degree (third order)");
        let rows = experiments::ablation_degree();
        for r in &rows {
            println!(
                "  {:<32} feasible={:<5} {:.2}s",
                r.config, r.feasible, r.seconds
            );
        }
        save_json("ablation_degree", &rows);

        banner("Ablation: certificate scheme");
        let rows = experiments::ablation_scheme();
        for r in &rows {
            println!(
                "  {:<32} feasible={:<5} {:.2}s",
                r.config, r.feasible, r.seconds
            );
        }
        save_json("ablation_scheme", &rows);

        banner("Ablation: robustness encoding");
        let rows = experiments::ablation_robust();
        for r in &rows {
            println!(
                "  {:<32} feasible={:<5} {:.2}s",
                r.config, r.feasible, r.seconds
            );
        }
        save_json("ablation_robust", &rows);

        banner("Ablation: advection variants");
        let rows = experiments::ablation_advection();
        for r in &rows {
            println!(
                "  {:<32} feasible={:<5} {:.4}s metric={:?}",
                r.config, r.feasible, r.seconds, r.metric
            );
        }
        save_json("ablation_advection", &rows);
    }

    println!("\ndone.");
}
