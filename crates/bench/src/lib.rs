//! Benchmark harness regenerating every table and figure of the paper's
//! experimental evaluation (Section 4).
//!
//! The [`experiments`] module contains one runner per artefact:
//!
//! | Paper artefact | Runner |
//! |----------------|--------|
//! | Table 1 (parameters) | [`experiments::table1`] |
//! | Fig. 2 (3rd-order attractive invariant) | [`experiments::fig2`] |
//! | Fig. 3 (4th-order attractive invariant) | [`experiments::fig3`] |
//! | Fig. 4 (3rd-order bounded advection) | [`experiments::fig4`] |
//! | Fig. 5 (4th-order advection + escape) | [`experiments::fig5`] |
//! | Table 2 (per-step computation time) | [`experiments::table2`] |
//!
//! plus the ablations called out in `DESIGN.md`
//! ([`experiments::ablation_degree`], [`experiments::ablation_scheme`],
//! [`experiments::ablation_robust`], [`experiments::ablation_advection`]).
//!
//! Figure runners emit level-curve point series via [`contour`] — the same
//! curves the paper plots — and every runner's result serialises to JSON so
//! `reproduce` can persist raw data under `target/experiments/`.

pub mod contour;
pub mod experiments;

use std::path::{Path, PathBuf};

/// Canonical location of `BENCH_SDP.json`, resolved against the workspace
/// `target/` directory so the `reproduce` runner and the
/// `substrate_kernels` bench agree on it regardless of invocation cwd.
pub fn bench_sdp_json_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/experiments/BENCH_SDP.json")
}

/// Atomically replaces `path` with `contents`: writes a sibling temp file,
/// then renames it over the target. A crash mid-write leaves either the old
/// file or the new one, never a truncated hybrid (rename is atomic on POSIX
/// within a filesystem, and the temp file lives next to its target).
///
/// Durable against power loss, not just process crashes: the temp file is
/// fsynced before the rename (so the data reaches disk before the name
/// does) and the parent directory is fsynced after (so the rename itself is
/// journaled). Without the directory sync a power cut can forget the
/// rename, resurrecting the old file — or worse, an empty one.
pub fn write_atomic(path: &Path, contents: &str) -> std::io::Result<()> {
    use std::io::Write;
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut tmp = path.as_os_str().to_os_string();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    let mut f = std::fs::File::create(&tmp)?;
    f.write_all(contents.as_bytes())?;
    f.sync_all()?;
    drop(f);
    std::fs::rename(&tmp, path)?;
    if let Some(parent) = path.parent() {
        // Directory fsync is a POSIX idiom; tolerate filesystems (or
        // platforms) that refuse to open or sync a directory.
        if let Ok(dir) = std::fs::File::open(parent) {
            let _ = dir.sync_all();
        }
    }
    Ok(())
}

/// Read-merge-write of one top-level section of `BENCH_SDP.json`: the
/// pipeline timings (`reproduce --only bench`) and the kernel timings
/// (`cargo bench --bench substrate_kernels`) each own a section and must
/// not clobber the other's. The write is atomic ([`write_atomic`]), so a
/// crash during one runner cannot destroy the other's section.
pub fn merge_bench_sdp(
    path: &Path,
    section: &str,
    value: cppll_json::Value,
) -> std::io::Result<()> {
    use cppll_json::Value;
    let mut members = match std::fs::read_to_string(path) {
        Ok(text) => match cppll_json::parse(&text) {
            Ok(Value::Object(m)) => m,
            // Unparseable or non-object contents: start the file over.
            _ => Vec::new(),
        },
        Err(_) => Vec::new(),
    };
    match members.iter_mut().find(|(k, _)| k == section) {
        Some(slot) => slot.1 = value,
        None => members.push((section.to_string(), value)),
    }
    write_atomic(path, &Value::Object(members).to_pretty_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_atomic_replaces_and_leaves_no_temp_file() {
        let dir = std::env::temp_dir().join("cppll-bench-tests/atomic");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("out.json");
        write_atomic(&path, "first").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "first");
        write_atomic(&path, "second").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "second");
        let mut tmp = path.as_os_str().to_os_string();
        tmp.push(".tmp");
        assert!(
            !PathBuf::from(tmp).exists(),
            "the temp file must not outlive the rename"
        );
    }
}
