//! Benchmark harness regenerating every table and figure of the paper's
//! experimental evaluation (Section 4).
//!
//! The [`experiments`] module contains one runner per artefact:
//!
//! | Paper artefact | Runner |
//! |----------------|--------|
//! | Table 1 (parameters) | [`experiments::table1`] |
//! | Fig. 2 (3rd-order attractive invariant) | [`experiments::fig2`] |
//! | Fig. 3 (4th-order attractive invariant) | [`experiments::fig3`] |
//! | Fig. 4 (3rd-order bounded advection) | [`experiments::fig4`] |
//! | Fig. 5 (4th-order advection + escape) | [`experiments::fig5`] |
//! | Table 2 (per-step computation time) | [`experiments::table2`] |
//!
//! plus the ablations called out in `DESIGN.md`
//! ([`experiments::ablation_degree`], [`experiments::ablation_scheme`],
//! [`experiments::ablation_robust`], [`experiments::ablation_advection`]).
//!
//! Figure runners emit level-curve point series via [`contour`] — the same
//! curves the paper plots — and every runner's result serialises to JSON so
//! `reproduce` can persist raw data under `target/experiments/`.

pub mod contour;
pub mod experiments;
