//! One runner per table/figure of the paper, plus the ablations.

use cppll_hybrid::{HybridSystem, Jump, Mode};
use cppll_json::{ObjectBuilder, ToJson, Value};
use cppll_pll::{
    PllModelBuilder, PllOrder, TableOneParams, UncertaintySelection, VerificationModel,
};
use cppll_poly::Polynomial;
use cppll_sdp::SolveTimings;
use cppll_verify::{
    CertificateScheme, EventKind, InevitabilityVerifier, LyapunovOptions, LyapunovSynthesizer,
    PipelineOptions, ReductionStats, Region, ResilienceConfig, RobustEncoding, TraceLevel,
    Tracer, VerificationReport,
};

use crate::contour::{trace_sublevel_boundary, Curve};

/// Certificate degrees used by the paper: 6 for the third order, 4 for the
/// fourth. `quick` mode uses 4/4 to keep the harness fast; the third order
/// still verifies, while the fourth typically degrades during inclusion
/// checking at that degree — Table 2 records both outcomes in its
/// `verified` flags instead of aborting.
pub fn paper_degree(order: PllOrder, quick: bool) -> u32 {
    match (order, quick) {
        (PllOrder::Third, false) => 6,
        _ => 4,
    }
}

/// Builds the verification model used across the experiments.
pub fn model(order: PllOrder) -> VerificationModel {
    PllModelBuilder::new(order).build()
}

/// Runs the full pipeline for one benchmark. Results are memoised per
/// `(order, quick)` so the figure and table runners share one pipeline run.
pub fn run_pipeline(order: PllOrder, quick: bool) -> (VerificationModel, VerificationReport) {
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};
    type Key = (bool, bool); // (is_fourth, quick)
    static CACHE: OnceLock<Mutex<HashMap<Key, (VerificationModel, VerificationReport)>>> =
        OnceLock::new();
    let key = (order == PllOrder::Fourth, quick);
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(hit) = cache.lock().expect("cache lock").get(&key) {
        return hit.clone();
    }
    let m = model(order);
    let verifier = InevitabilityVerifier::for_pll(&m);
    let mut opt = PipelineOptions::degree(paper_degree(order, quick));
    // The harness runs supervised: transient stalls near the feasibility
    // boundary are retried rather than absorbed, and the attempt counts
    // surface in the reproduction output.
    opt.resilience = ResilienceConfig::with_retries(2);
    let report = verifier
        .verify(&opt)
        .expect("lyapunov synthesis feasible for the PLL benchmarks");
    let value = (m, report);
    cache.lock().expect("cache lock").insert(key, value.clone());
    value
}

// ---------------------------------------------------------------------------
// Table 1
// ---------------------------------------------------------------------------

/// One row of the Table-1 reproduction.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Parameter name.
    pub parameter: String,
    /// Third-order value (SI units).
    pub third: String,
    /// Fourth-order value (SI units).
    pub fourth: String,
}

/// Reproduces Table 1 — the parameters are inputs, so this row set *is* the
/// table, plus the derived scaled coefficients for transparency.
pub fn table1() -> Vec<Table1Row> {
    let t = TableOneParams::third_order();
    let f = TableOneParams::fourth_order();
    let fmt_iv = |iv: cppll_pll::Interval, scale: f64, unit: &str| {
        format!("[{:.3}, {:.3}] {unit}", iv.lo * scale, iv.hi * scale)
    };
    let mut rows = vec![
        Table1Row {
            parameter: "C1".into(),
            third: fmt_iv(t.c1, 1e12, "pF"),
            fourth: fmt_iv(f.c1, 1e12, "pF"),
        },
        Table1Row {
            parameter: "C2".into(),
            third: fmt_iv(t.c2, 1e12, "pF"),
            fourth: fmt_iv(f.c2, 1e12, "pF"),
        },
        Table1Row {
            parameter: "C3".into(),
            third: "—".into(),
            fourth: fmt_iv(f.c3.expect("fourth order"), 1e12, "pF"),
        },
        Table1Row {
            parameter: "R".into(),
            third: fmt_iv(t.r, 1e-3, "kΩ"),
            fourth: fmt_iv(f.r, 1e-3, "kΩ"),
        },
        Table1Row {
            parameter: "R2".into(),
            third: "—".into(),
            fourth: fmt_iv(f.r2.expect("fourth order"), 1e-3, "kΩ"),
        },
        Table1Row {
            parameter: "f_ref".into(),
            third: format!("{} MHz", t.f_ref / 1e6),
            fourth: format!("{} MHz", f.f_ref / 1e6),
        },
        Table1Row {
            parameter: "Ip".into(),
            third: fmt_iv(t.ip, 1e6, "µA"),
            fourth: fmt_iv(f.ip, 1e6, "µA"),
        },
        Table1Row {
            parameter: "N".into(),
            third: fmt_iv(t.n, 1.0, ""),
            fourth: fmt_iv(f.n, 1.0, ""),
        },
    ];
    // Derived scaled coefficients (documented reconstruction).
    let sc3 = cppll_pll::ScaledCoefficients::from_params(&t);
    let sc4 = cppll_pll::ScaledCoefficients::from_params(&f);
    rows.push(Table1Row {
        parameter: "scaled coefficients".into(),
        third: format!("{sc3}"),
        fourth: format!("{sc4}"),
    });
    rows
}

// ---------------------------------------------------------------------------
// Figures 2 and 3: attractive invariants
// ---------------------------------------------------------------------------

/// Data behind one attractive-invariant figure.
#[derive(Debug, Clone)]
pub struct FigureResult {
    /// Artefact id, e.g. `"fig2"`.
    pub id: String,
    /// Level curves of the attractive invariant on the figure's planes.
    pub curves: Vec<Curve>,
    /// Maximised level value `c*`.
    pub level: f64,
    /// Certificate degree used.
    pub degree: u32,
    /// Free-text observations recorded for EXPERIMENTS.md.
    pub notes: Vec<String>,
}

fn ai_figure(
    id: &str,
    order: PllOrder,
    planes: &[(usize, usize, &str)],
    quick: bool,
) -> FigureResult {
    let (m, report) = run_pipeline(order, quick);
    let tracking = m.tracking_mode();
    let ai = &report.levels.ai_polys[tracking];
    let mut curves = Vec::new();
    for &(x, y, label) in planes {
        curves.push(trace_sublevel_boundary(ai, x, y, 96, 50.0, label));
    }
    let notes = vec![
        format!("verdict: {:?}", report.verdict),
        format!("solves: {}", report.solve_stats),
        format!("level c* = {:.4}", report.levels.level),
        format!(
            "projection extents: {}",
            curves
                .iter()
                .map(|c| format!("{}: x≤{:.2} y≤{:.2}", c.label, c.x_extent(), c.y_extent()))
                .collect::<Vec<_>>()
                .join("; ")
        ),
    ];
    FigureResult {
        id: id.into(),
        curves,
        level: report.levels.level,
        degree: report
            .certificates
            .as_ref()
            .expect("verified run has certificates")
            .degree(),
        notes,
    }
}

/// Fig. 2: third-order attractive invariant projected onto `(v1, v2)` and
/// `(v2, e)`.
pub fn fig2(quick: bool) -> FigureResult {
    ai_figure(
        "fig2",
        PllOrder::Third,
        &[(0, 1, "AI (v1, v2)"), (1, 2, "AI (v2, e)")],
        quick,
    )
}

/// Fig. 3: fourth-order attractive invariant projected onto `(v2, v3)` and
/// `(v2, e)`.
pub fn fig3(quick: bool) -> FigureResult {
    ai_figure(
        "fig3",
        PllOrder::Fourth,
        &[(1, 2, "AI (v2, v3)"), (1, 3, "AI (v2, e)")],
        quick,
    )
}

// ---------------------------------------------------------------------------
// Figures 4 and 5: bounded advection
// ---------------------------------------------------------------------------

/// Data behind one advection figure.
#[derive(Debug, Clone)]
pub struct AdvectionFigure {
    /// Artefact id, e.g. `"fig4"`.
    pub id: String,
    /// The outer (initial) set's curves.
    pub initial_curves: Vec<Curve>,
    /// The attractive invariant's curves.
    pub ai_curves: Vec<Curve>,
    /// Advected front curves per iteration (tracking-mode piece).
    pub front_curves: Vec<Vec<Curve>>,
    /// Iterations performed.
    pub iterations: usize,
    /// Iteration after which the front was certified inside the AI.
    pub included_after: Option<usize>,
    /// Number of escape certificates synthesised (fig. 5's pink region).
    pub escape_count: usize,
    /// Whether the overall verdict was "inevitable".
    pub verified: bool,
    /// Observations for EXPERIMENTS.md.
    pub notes: Vec<String>,
}

fn advection_figure(
    id: &str,
    order: PllOrder,
    planes: &[(usize, usize)],
    quick: bool,
    force_escape_path: bool,
) -> AdvectionFigure {
    let m = model(order);
    let verifier = InevitabilityVerifier::for_pll(&m);
    let mut opt = PipelineOptions::degree(paper_degree(order, quick));
    if force_escape_path {
        // Reproduce the paper's fourth-order situation: advection alone is
        // not allowed to finish, so the leftover region must be closed by
        // escape certificates (Algorithm 1, lines 13–18).
        opt.max_advection_iters = 0;
    }
    let report = verifier.verify(&opt).expect("pipeline runs");
    let tracking = m.tracking_mode();
    let trace_planes = |p: &cppll_poly::Polynomial, label: String| -> Vec<Curve> {
        planes
            .iter()
            .map(|&(x, y)| trace_sublevel_boundary(p, x, y, 96, 50.0, format!("{label} ({x},{y})")))
            .collect()
    };
    let initial_curves = trace_planes(verifier.initial().level(), "initial".into());
    let ai_curves = trace_planes(&report.levels.ai_polys[tracking], "AI".into());
    let front_curves: Vec<Vec<Curve>> = report
        .advection_trace
        .iter()
        .enumerate()
        .map(|(k, e)| trace_planes(&e.pieces[tracking], format!("front {k}")))
        .collect();
    let verified = report.verdict.is_verified();
    let notes = vec![
        format!("verdict: {:?}", report.verdict),
        format!("solves: {}", report.solve_stats),
        format!(
            "advection iterations: {} (paper: {})",
            report.advection_iterations(),
            if order == PllOrder::Third { 14 } else { 7 }
        ),
        format!("escape certificates: {}", report.escape_certificates.len()),
        format!(
            "guard mismatch (last step): {:.2e}",
            report
                .advection_trace
                .last()
                .map_or(0.0, |e| e.guard_mismatch)
        ),
    ];
    AdvectionFigure {
        id: id.into(),
        initial_curves,
        ai_curves,
        front_curves,
        iterations: report.advection_iterations(),
        included_after: report.included_after(),
        escape_count: report.escape_certificates.len(),
        verified,
        notes,
    }
}

/// Fig. 4: third-order advection — the front immerses symmetrically into the
/// attractive invariant after finitely many iterations.
pub fn fig4(quick: bool) -> AdvectionFigure {
    advection_figure("fig4", PllOrder::Third, &[(0, 1), (1, 2)], quick, false)
}

/// Fig. 5: fourth-order advection. The default run immerses by advection; a
/// second run with advection disabled exercises the paper's fallback where
/// **escape certificates** close the argument for the leftover region (the
/// paper needed 2 certificates; see [`fig5_escape_variant`]).
pub fn fig5(quick: bool) -> AdvectionFigure {
    advection_figure("fig5", PllOrder::Fourth, &[(1, 2), (1, 3)], quick, false)
}

/// The escape-certificate variant of Fig. 5 (Algorithm 1, lines 13–18).
pub fn fig5_escape_variant(quick: bool) -> AdvectionFigure {
    advection_figure(
        "fig5-escape",
        PllOrder::Fourth,
        &[(1, 2), (1, 3)],
        quick,
        true,
    )
}

// ---------------------------------------------------------------------------
// Table 2: computation times
// ---------------------------------------------------------------------------

/// One row of the Table-2 reproduction.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Verification step name.
    pub step: String,
    /// Our third-order time (seconds).
    pub third_seconds: f64,
    /// Our fourth-order time (seconds).
    pub fourth_seconds: f64,
    /// Paper's third-order time (seconds).
    pub paper_third: Option<f64>,
    /// Paper's fourth-order time (seconds).
    pub paper_fourth: Option<f64>,
}

/// The Table-2 reproduction plus summary facts.
#[derive(Debug, Clone)]
pub struct Table2 {
    /// Rows in the paper's order.
    pub rows: Vec<Table2Row>,
    /// Certificate degrees used (third, fourth).
    pub degrees: (u32, u32),
    /// Both verdicts verified?
    pub verified: (bool, bool),
    /// Supervised-solve totals `(solves, attempts)` per benchmark, third
    /// then fourth — the reproduction's retry footprint.
    pub solve_attempts: ((usize, usize), (usize, usize)),
}

/// Reproduces Table 2 by running both pipelines and tabulating per-step
/// wall-clock seconds next to the paper's numbers.
pub fn table2(quick: bool) -> Table2 {
    let (_, r3) = run_pipeline(PllOrder::Third, quick);
    let (_, r4) = run_pipeline(PllOrder::Fourth, quick);
    let paper: &[(&str, Option<f64>, Option<f64>)] = &[
        ("attractive invariant", Some(1381.7), Some(10021.0)),
        ("max level curves", Some(15.5), Some(12.0)),
        ("advection", Some(106.8487), Some(140.678)),
        ("checking set inclusion", Some(13.0), Some(10.2)),
        ("escape certificate", None, Some(18.0)),
    ];
    let lookup = |r: &VerificationReport, name: &str| {
        r.timings
            .iter()
            .find(|t| t.name == name)
            .map_or(0.0, |t| t.seconds)
    };
    let rows = paper
        .iter()
        .map(|&(name, p3, p4)| Table2Row {
            step: name.into(),
            third_seconds: lookup(&r3, name),
            fourth_seconds: lookup(&r4, name),
            paper_third: p3,
            paper_fourth: p4,
        })
        .collect();
    Table2 {
        rows,
        // A degraded run has no certificates; the `verified` flags below
        // record that, so the table keeps printing instead of panicking.
        degrees: (
            r3.certificates.as_ref().map_or(0, |c| c.degree()),
            r4.certificates.as_ref().map_or(0, |c| c.degree()),
        ),
        verified: (r3.verdict.is_verified(), r4.verdict.is_verified()),
        solve_attempts: (
            (r3.solve_stats.solves, r3.solve_stats.attempts),
            (r4.solve_stats.solves, r4.solve_stats.attempts),
        ),
    }
}

// ---------------------------------------------------------------------------
// Ablations
// ---------------------------------------------------------------------------

/// One ablation measurement.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Configuration label.
    pub config: String,
    /// Whether certificate synthesis succeeded.
    pub feasible: bool,
    /// Wall-clock seconds of the synthesis.
    pub seconds: f64,
    /// Extra metric (level value, γ, …) depending on the ablation.
    pub metric: Option<f64>,
}

/// Certificate-degree sweep on the third-order benchmark (2 is infeasible —
/// the saturated slabs genuinely need quartics; 4 and 6 succeed).
pub fn ablation_degree() -> Vec<AblationRow> {
    let m = model(PllOrder::Third);
    [2u32, 4, 6]
        .iter()
        .map(|&deg| {
            let t = std::time::Instant::now();
            let r =
                LyapunovSynthesizer::new(m.system()).synthesize_auto(&LyapunovOptions::degree(deg));
            AblationRow {
                config: format!("degree {deg}"),
                feasible: r.is_ok(),
                seconds: t.elapsed().as_secs_f64(),
                metric: None,
            }
        })
        .collect()
}

/// Common vs multiple Lyapunov certificates (third order, degree 4).
pub fn ablation_scheme() -> Vec<AblationRow> {
    let m = model(PllOrder::Third);
    [
        ("common", CertificateScheme::Common),
        ("multiple", CertificateScheme::Multiple),
    ]
    .iter()
    .map(|&(label, scheme)| {
        let t = std::time::Instant::now();
        let opt = LyapunovOptions::degree(4).with_scheme(scheme);
        let r = LyapunovSynthesizer::new(m.system()).synthesize_auto(&opt);
        AblationRow {
            config: format!("scheme {label}"),
            feasible: r.is_ok(),
            seconds: t.elapsed().as_secs_f64(),
            metric: None,
        }
    })
    .collect()
}

/// Robustness encodings: nominal / pump+gain vertices / full vertices /
/// S-procedure (the paper's own encoding).
pub fn ablation_robust() -> Vec<AblationRow> {
    let mut rows = Vec::new();
    // Single synthesis attempt per configuration at the margin the robust
    // encodings are known to need (ε = 10⁻⁶): the ε-ladder would multiply
    // the cost of the heavyweight configurations several-fold.
    let mut opt_base = LyapunovOptions::degree(4);
    opt_base.epsilon = 1e-6;
    for (label, unc) in [
        ("nominal", UncertaintySelection::Nominal),
        ("vertices (Ip, N)", UncertaintySelection::PumpAndGain),
        ("vertices (all)", UncertaintySelection::Full),
    ] {
        let m = PllModelBuilder::new(PllOrder::Third)
            .with_uncertainty(unc)
            .build();
        let t = std::time::Instant::now();
        let r = LyapunovSynthesizer::new(m.system()).synthesize(&opt_base);
        rows.push(AblationRow {
            config: format!("robust {label}"),
            feasible: r.is_ok(),
            seconds: t.elapsed().as_secs_f64(),
            metric: None,
        });
    }
    // The paper's S-procedure encoding (parameters as indeterminates),
    // with a bounded iteration budget: the point of the ablation is the
    // relative cost, and an overrunning solve is itself the datum.
    let m = PllModelBuilder::new(PllOrder::Third).build();
    let t = std::time::Instant::now();
    let mut opt = opt_base.clone().with_robust(RobustEncoding::SProcedure);
    opt.sos.sdp.max_iterations = 60;
    let r = LyapunovSynthesizer::new(m.system()).synthesize(&opt);
    rows.push(AblationRow {
        config: "robust s-procedure (Ip, N)".into(),
        feasible: r.is_ok(),
        seconds: t.elapsed().as_secs_f64(),
        metric: None,
    });
    rows
}

/// Advection variants: exact piecewise Taylor (orders 1/2) vs the Eq.-6
/// style SOS merge with bisected tightness γ.
pub fn ablation_advection() -> Vec<AblationRow> {
    use cppll_verify::{Advection, AdvectionOptions};
    let m = model(PllOrder::Third);
    let adv = Advection::new(m.system());
    let initial = cppll_verify::Region::ellipsoid(&[1.5, 1.5, 1.9]);
    let mut rows = Vec::new();
    for order in [1u32, 2] {
        let opt = AdvectionOptions {
            taylor_order: order,
            error_box: vec![1.9, 1.9, 2.4],
            ..Default::default()
        };
        let t = std::time::Instant::now();
        let pieces = vec![initial.level().clone(); 3];
        let stepped = adv.step_pieces(&pieces, &opt);
        let err = adv.estimate_taylor_error(initial.level(), &opt);
        let mismatch = adv.guard_mismatch(&stepped, &opt);
        rows.push(AblationRow {
            config: format!("piecewise taylor-{order}"),
            feasible: true,
            seconds: t.elapsed().as_secs_f64(),
            metric: Some(err.max(mismatch)),
        });
    }
    // SOS merge (single-front representation, Eq. 6 analogue).
    let opt = AdvectionOptions {
        error_box: vec![1.9, 1.9, 2.4],
        bounding: {
            let n = 3;
            let mut b = Vec::new();
            for (i, r) in [1.9f64, 1.9, 2.4].iter().enumerate() {
                let xi = cppll_poly::Polynomial::var(n, i);
                b.push(&cppll_poly::Polynomial::constant(n, *r) - &xi);
                b.push(&cppll_poly::Polynomial::constant(n, *r) + &xi);
            }
            b
        },
        ..Default::default()
    };
    let t = std::time::Instant::now();
    let step = adv.step(initial.level(), &opt);
    rows.push(AblationRow {
        config: "sos merge (Eq. 6 analogue)".into(),
        feasible: step.is_some(),
        seconds: t.elapsed().as_secs_f64(),
        metric: step.map(|s| s.gamma),
    });
    rows
}

// ---------------------------------------------------------------------------
// SDP hot-path benchmark (BENCH_SDP.json)
// ---------------------------------------------------------------------------

/// Per-stage SDP solver wall-clock of one benchmark problem, aggregated by
/// the supervised-solve ledger across a full pipeline run.
#[derive(Debug, Clone)]
pub struct BenchSdpRow {
    /// Problem label.
    pub problem: String,
    /// Whether the run verified.
    pub verified: bool,
    /// Supervised solves of the run.
    pub solves: usize,
    /// Solve attempts including retries.
    pub attempts: usize,
    /// Aggregate per-stage solver timings.
    pub timings: SolveTimings,
    /// Aggregate problem-size reduction statistics (Gram basis pruning and
    /// symmetry block splitting) across the run's solves.
    pub reduction: ReductionStats,
}

/// Trace-overhead measurement for `BENCH_SDP.json`: the toy pipeline run
/// untraced and again at `iter` level, with event statistics and the two
/// result digests (which must agree — tracing never touches the numerics).
#[derive(Debug, Clone)]
pub struct BenchTelemetry {
    /// Recording level of the traced run.
    pub trace_level: String,
    /// Total events recorded by the traced run.
    pub events: usize,
    /// Spans opened.
    pub spans: usize,
    /// Per-interior-point-iteration instants.
    pub iteration_events: usize,
    /// Counter totals (retries, warm-start hits, …), sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Wall-clock of the untraced run.
    pub untraced_seconds: f64,
    /// Wall-clock of the `iter`-traced run.
    pub traced_seconds: f64,
    /// Result digest of the untraced run.
    pub digest_untraced: String,
    /// Result digest of the traced run.
    pub digest_traced: String,
}

/// The SDP hot-path benchmark: where solver time goes on a toy hybrid
/// system and on the third-order PLL.
#[derive(Debug, Clone)]
pub struct BenchSdp {
    /// Worker threads the solver resolves to under the current settings.
    pub threads: usize,
    /// One row per benchmark problem.
    pub rows: Vec<BenchSdpRow>,
    /// Trace-overhead measurement on the toy problem.
    pub telemetry: BenchTelemetry,
}

/// The two-mode planar spiral from the toy inevitability test: both modes
/// contract to the origin, identity jumps on the switching line `x = 0`.
fn toy_two_mode_spiral() -> HybridSystem {
    let right = vec![
        Polynomial::from_terms(2, &[(&[1, 0], -1.0), (&[0, 1], 1.0)]),
        Polynomial::from_terms(2, &[(&[1, 0], -1.0), (&[0, 1], -1.0)]),
    ];
    let left = vec![
        Polynomial::from_terms(2, &[(&[1, 0], -1.0), (&[0, 1], 0.5)]),
        Polynomial::from_terms(2, &[(&[1, 0], -0.5), (&[0, 1], -1.0)]),
    ];
    let x = Polynomial::var(2, 0);
    let m0 = Mode::new("right", right).with_flow_set(vec![x.clone()]);
    let m1 = Mode::new("left", left).with_flow_set(vec![x.scale(-1.0)]);
    let guard = vec![Polynomial::var(2, 0)];
    let jumps = vec![
        Jump::identity(0, 1).with_guard_eq(guard.clone()),
        Jump::identity(1, 0).with_guard_eq(guard),
    ];
    HybridSystem::new(2, vec![m0, m1], jumps)
}

fn bench_sdp_row(problem: &str, report: &VerificationReport) -> BenchSdpRow {
    BenchSdpRow {
        problem: problem.into(),
        verified: report.verdict.is_verified(),
        solves: report.solve_stats.solves,
        attempts: report.solve_stats.attempts,
        timings: report.solve_timings,
        reduction: report.reduction,
    }
}

/// Runs the SDP hot-path benchmark: a toy two-mode system (degree 2) and
/// the third-order PLL at the `quick`-selected degree, reporting per-stage
/// solver timings of each.
pub fn bench_sdp(quick: bool) -> BenchSdp {
    let sys = toy_two_mode_spiral();
    let mut boundary = Vec::new();
    for i in 0..2 {
        let xi = Polynomial::var(2, i);
        boundary.push(&Polynomial::constant(2, 3.0) - &xi);
        boundary.push(&Polynomial::constant(2, 3.0) + &xi);
    }
    let verifier = InevitabilityVerifier::new(&sys, boundary, Region::ball(2, 2.0));
    let t0 = std::time::Instant::now();
    let toy = verifier
        .verify(&PipelineOptions::degree(2))
        .expect("toy system verifies");
    let untraced_seconds = t0.elapsed().as_secs_f64();

    // Same problem again with full iteration-level telemetry: the digests
    // must agree (tracing never touches the numerics) and the wall-clock
    // delta is the trace overhead on a pipeline dominated by small solves.
    let tracer = Tracer::new(TraceLevel::Iter);
    let mut traced_opt = PipelineOptions::degree(2);
    traced_opt.trace = Some(tracer.clone());
    let t0 = std::time::Instant::now();
    let toy_traced = verifier
        .verify(&traced_opt)
        .expect("toy system verifies traced");
    let traced_seconds = t0.elapsed().as_secs_f64();
    let events = tracer.events();
    let telemetry = BenchTelemetry {
        trace_level: TraceLevel::Iter.as_str().into(),
        events: events.len(),
        spans: events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Begin { .. }))
            .count(),
        iteration_events: events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Instant { .. }) && e.name() == "iteration")
            .count(),
        counters: tracer
            .counter_totals()
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
        untraced_seconds,
        traced_seconds,
        digest_untraced: toy.result_digest(),
        digest_traced: toy_traced.result_digest(),
    };

    let (_, r3) = run_pipeline(PllOrder::Third, quick);
    let (_, r4) = run_pipeline(PllOrder::Fourth, quick);
    BenchSdp {
        threads: cppll_par::current_threads(),
        rows: vec![
            bench_sdp_row("toy_two_mode_spiral", &toy),
            bench_sdp_row("pll_third_order", &r3),
            bench_sdp_row("pll_fourth_order", &r4),
        ],
        telemetry,
    }
}

// ---------------------------------------------------------------------------
// JSON artefact serialisation (hand-rolled: serde is unavailable offline).
// ---------------------------------------------------------------------------

impl ToJson for Table1Row {
    fn to_json(&self) -> Value {
        ObjectBuilder::new()
            .field("parameter", &self.parameter)
            .field("third", &self.third)
            .field("fourth", &self.fourth)
            .build()
    }
}

impl ToJson for FigureResult {
    fn to_json(&self) -> Value {
        ObjectBuilder::new()
            .field("id", &self.id)
            .field("curves", &self.curves)
            .field("level", self.level)
            .field("degree", self.degree)
            .field("notes", &self.notes)
            .build()
    }
}

impl ToJson for AdvectionFigure {
    fn to_json(&self) -> Value {
        ObjectBuilder::new()
            .field("id", &self.id)
            .field("initial_curves", &self.initial_curves)
            .field("ai_curves", &self.ai_curves)
            .field("front_curves", &self.front_curves)
            .field("iterations", self.iterations)
            .field("included_after", self.included_after)
            .field("escape_count", self.escape_count)
            .field("verified", self.verified)
            .field("notes", &self.notes)
            .build()
    }
}

impl ToJson for Table2Row {
    fn to_json(&self) -> Value {
        ObjectBuilder::new()
            .field("step", &self.step)
            .field("third_seconds", self.third_seconds)
            .field("fourth_seconds", self.fourth_seconds)
            .field("paper_third", self.paper_third)
            .field("paper_fourth", self.paper_fourth)
            .build()
    }
}

impl ToJson for Table2 {
    fn to_json(&self) -> Value {
        ObjectBuilder::new()
            .field("rows", &self.rows)
            .field("degrees", self.degrees)
            .field("verified", self.verified)
            .field("solve_attempts", self.solve_attempts)
            .build()
    }
}

impl ToJson for BenchSdpRow {
    fn to_json(&self) -> Value {
        let mut stages = ObjectBuilder::new();
        for (name, secs) in self.timings.stages() {
            stages = stages.field(name, secs);
        }
        ObjectBuilder::new()
            .field("problem", &self.problem)
            .field("verified", self.verified)
            .field("solves", self.solves)
            .field("attempts", self.attempts)
            .field("stages", stages.build())
            .field("total_seconds", self.timings.total)
            .field("schur_pairs_skipped", self.timings.schur_pairs_skipped)
            .field("reduction", self.reduction.to_json())
            .build()
    }
}

impl ToJson for BenchTelemetry {
    fn to_json(&self) -> Value {
        let mut counters = ObjectBuilder::new();
        for (name, total) in &self.counters {
            counters = counters.field(name, *total);
        }
        ObjectBuilder::new()
            .field("trace_level", &self.trace_level)
            .field("events", self.events)
            .field("spans", self.spans)
            .field("iteration_events", self.iteration_events)
            .field("counters", counters.build())
            .field("untraced_seconds", self.untraced_seconds)
            .field("traced_seconds", self.traced_seconds)
            .field("digest_untraced", &self.digest_untraced)
            .field("digest_traced", &self.digest_traced)
            .build()
    }
}

impl ToJson for BenchSdp {
    fn to_json(&self) -> Value {
        ObjectBuilder::new()
            .field("threads", self.threads)
            .field("rows", &self.rows)
            .field("telemetry", self.telemetry.to_json())
            .build()
    }
}

impl ToJson for AblationRow {
    fn to_json(&self) -> Value {
        ObjectBuilder::new()
            .field("config", &self.config)
            .field("feasible", self.feasible)
            .field("seconds", self.seconds)
            .field("metric", self.metric)
            .build()
    }
}
