//! Sparse multivariate polynomial arithmetic over `f64`.
//!
//! This crate is the symbolic substrate of the SOS toolchain: flow maps of
//! the hybrid PLL models, Lyapunov/escape certificate candidates, S-procedure
//! multipliers and advected level-set polynomials are all [`Polynomial`]
//! values.
//!
//! Features:
//!
//! * ring arithmetic (`+`, `-`, `*`, powers) on sparse term maps,
//! * calculus: partial derivatives, [`Polynomial::gradient`],
//!   [`Polynomial::hessian`], and the Lie derivative
//!   [`Polynomial::lie_derivative`] along a polynomial vector field,
//! * composition/substitution ([`Polynomial::compose`]) used for coordinate
//!   shifts and Taylor advection maps,
//! * monomial bases ([`monomials_up_to`]) for Gram-matrix parametrisations.
//!
//! # Examples
//!
//! ```
//! use cppll_poly::Polynomial;
//!
//! // p(x, y) = x² + 2 x y
//! let x = Polynomial::var(2, 0);
//! let y = Polynomial::var(2, 1);
//! let p = &(&x * &x) + &(&(&x * &y) * &Polynomial::constant(2, 2.0));
//! assert_eq!(p.eval(&[1.0, 3.0]), 7.0);
//! // ∂p/∂x = 2x + 2y
//! assert_eq!(p.partial_derivative(0).eval(&[1.0, 3.0]), 8.0);
//! ```

mod basis;
mod monomial;
mod newton;
mod polynomial;

pub use basis::{monomials_of_degree, monomials_up_to};
pub use monomial::Monomial;
pub use newton::{prune_gram_basis, prune_multiplier_basis, NewtonPolytope};
pub use polynomial::Polynomial;
