//! Monomials as exponent multi-indices.

/// A monomial `x₀^{e₀} x₁^{e₁} ⋯` over a fixed number of variables.
///
/// Ordered by **graded lexicographic** order (total degree first, then
/// lexicographic on exponents), which gives deterministic term ordering in
/// polynomial printing and Gram-matrix bases.
///
/// # Examples
///
/// ```
/// use cppll_poly::Monomial;
///
/// let m = Monomial::new(vec![2, 1]); // x₀² x₁
/// assert_eq!(m.degree(), 3);
/// assert_eq!(m.eval(&[2.0, 3.0]), 12.0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Monomial {
    exps: Vec<u32>,
}

impl Monomial {
    /// Creates a monomial from its exponent vector.
    pub fn new(exps: Vec<u32>) -> Self {
        Monomial { exps }
    }

    /// The constant monomial `1` over `nvars` variables.
    pub fn one(nvars: usize) -> Self {
        Monomial {
            exps: vec![0; nvars],
        }
    }

    /// The monomial `x_i` over `nvars` variables.
    ///
    /// # Panics
    ///
    /// Panics if `i >= nvars`.
    pub fn var(nvars: usize, i: usize) -> Self {
        assert!(i < nvars, "variable index out of range");
        let mut exps = vec![0; nvars];
        exps[i] = 1;
        Monomial { exps }
    }

    /// Number of variables in the ambient polynomial ring.
    pub fn nvars(&self) -> usize {
        self.exps.len()
    }

    /// Exponent of variable `i`.
    pub fn exp(&self, i: usize) -> u32 {
        self.exps[i]
    }

    /// Exponent vector.
    pub fn exps(&self) -> &[u32] {
        &self.exps
    }

    /// Total degree `Σᵢ eᵢ`.
    pub fn degree(&self) -> u32 {
        self.exps.iter().sum()
    }

    /// `true` for the constant monomial.
    pub fn is_one(&self) -> bool {
        self.exps.iter().all(|&e| e == 0)
    }

    /// Product of two monomials.
    ///
    /// # Panics
    ///
    /// Panics if the variable counts differ.
    // An inherent `mul` (not `std::ops::Mul`) keeps the by-reference calling
    // convention uniform with the BigInt/Rational kernels.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(&self, rhs: &Monomial) -> Monomial {
        assert_eq!(self.nvars(), rhs.nvars(), "variable counts must match");
        Monomial {
            exps: self
                .exps
                .iter()
                .zip(&rhs.exps)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }

    /// Evaluates the monomial at a point.
    ///
    /// # Panics
    ///
    /// Panics if `point.len() != self.nvars()`.
    pub fn eval(&self, point: &[f64]) -> f64 {
        assert_eq!(point.len(), self.nvars(), "point dimension mismatch");
        self.exps
            .iter()
            .zip(point)
            .map(|(&e, &x)| x.powi(e as i32))
            .product()
    }

    /// Embeds this monomial into a ring with `nvars_new ≥ nvars` variables
    /// (new trailing variables get exponent zero).
    ///
    /// # Panics
    ///
    /// Panics if `nvars_new < self.nvars()`.
    pub fn extend(&self, nvars_new: usize) -> Monomial {
        assert!(nvars_new >= self.nvars(), "cannot shrink variable count");
        let mut exps = self.exps.clone();
        exps.resize(nvars_new, 0);
        Monomial { exps }
    }
}

impl PartialOrd for Monomial {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Monomial {
    /// Graded lexicographic order.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.degree()
            .cmp(&other.degree())
            .then_with(|| self.exps.cmp(&other.exps))
    }
}

impl std::fmt::Display for Monomial {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_one() {
            return write!(f, "1");
        }
        let mut first = true;
        for (i, &e) in self.exps.iter().enumerate() {
            if e == 0 {
                continue;
            }
            if !first {
                write!(f, "*")?;
            }
            first = false;
            if e == 1 {
                write!(f, "x{i}")?;
            } else {
                write!(f, "x{i}^{e}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degree_and_eval() {
        let m = Monomial::new(vec![1, 0, 3]);
        assert_eq!(m.degree(), 4);
        assert_eq!(m.eval(&[2.0, 5.0, 2.0]), 16.0);
    }

    #[test]
    fn product_adds_exponents() {
        let a = Monomial::new(vec![1, 2]);
        let b = Monomial::new(vec![0, 3]);
        assert_eq!(a.mul(&b), Monomial::new(vec![1, 5]));
    }

    #[test]
    fn grlex_order() {
        let one = Monomial::one(2);
        let x = Monomial::var(2, 0);
        let y = Monomial::var(2, 1);
        let xy = x.mul(&y);
        let x2 = x.mul(&x);
        assert!(one < x);
        assert!(y < x, "lex within same degree: (0,1) < (1,0)");
        assert!(x < x2, "degree dominates");
        assert!(xy < x2 || x2 < xy); // total order
    }

    #[test]
    fn extend_preserves_eval() {
        let m = Monomial::new(vec![2, 1]);
        let m3 = m.extend(3);
        assert_eq!(m3.nvars(), 3);
        assert_eq!(m3.eval(&[2.0, 3.0, 9.0]), m.eval(&[2.0, 3.0]));
    }

    #[test]
    fn display_is_readable() {
        let m = Monomial::new(vec![2, 0, 1]);
        assert_eq!(m.to_string(), "x0^2*x2");
        assert_eq!(Monomial::one(3).to_string(), "1");
    }
}
