//! Monomial basis generation for Gram-matrix parametrisations.

use crate::Monomial;

/// All monomials in `nvars` variables of total degree **exactly** `degree`,
/// in graded-lex order.
///
/// # Examples
///
/// ```
/// use cppll_poly::monomials_of_degree;
///
/// // x², xy, y² — three monomials of degree 2 in 2 variables.
/// assert_eq!(monomials_of_degree(2, 2).len(), 3);
/// ```
pub fn monomials_of_degree(nvars: usize, degree: u32) -> Vec<Monomial> {
    let mut out = Vec::with_capacity(compositions(nvars, degree));
    let mut exps = vec![0u32; nvars];
    fill(&mut out, &mut exps, 0, degree);
    out
}

/// All monomials in `nvars` variables of total degree **at most** `degree`,
/// in graded-lex order. This is the standard basis `z(x)` used to write a
/// degree-`2d` SOS candidate as `z(x)ᵀ Q z(x)`.
///
/// The count is `C(nvars + degree, degree)`.
///
/// # Examples
///
/// ```
/// use cppll_poly::monomials_up_to;
///
/// // 1, x, y, x², xy, y² — six monomials.
/// assert_eq!(monomials_up_to(2, 2).len(), 6);
/// ```
pub fn monomials_up_to(nvars: usize, degree: u32) -> Vec<Monomial> {
    // One pass in graded-lex order: a single pre-sized allocation, each
    // monomial pushed exactly once in its final position. `fill` emits a
    // fixed-degree slice already lex-sorted (the exponent loop ascends at
    // every position), so concatenating degrees 0..=degree is grlex order
    // with no intermediate buffers and no sort.
    let mut out =
        Vec::with_capacity(binomial(nvars as u64 + degree as u64, degree as u64) as usize);
    let mut exps = vec![0u32; nvars];
    for d in 0..=degree {
        fill(&mut out, &mut exps, 0, d);
    }
    out
}

/// Number of monomials of total degree exactly `degree`: C(n + d − 1, d).
fn compositions(nvars: usize, degree: u32) -> usize {
    if nvars == 0 {
        return if degree == 0 { 1 } else { 0 };
    }
    binomial(nvars as u64 + degree as u64 - 1, degree as u64) as usize
}

fn binomial(n: u64, k: u64) -> u64 {
    let k = k.min(n - k);
    let mut acc = 1u64;
    for i in 0..k {
        acc = acc * (n - i) / (i + 1);
    }
    acc
}

fn fill(out: &mut Vec<Monomial>, exps: &mut Vec<u32>, var: usize, remaining: u32) {
    if var + 1 == exps.len() {
        exps[var] = remaining;
        out.push(Monomial::new(exps.clone()));
        exps[var] = 0;
        return;
    }
    if exps.is_empty() {
        if remaining == 0 {
            out.push(Monomial::new(Vec::new()));
        }
        return;
    }
    for e in 0..=remaining {
        exps[var] = e;
        fill(out, exps, var + 1, remaining - e);
    }
    exps[var] = 0;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_binomials() {
        for nvars in 1..=5usize {
            for degree in 0..=4u32 {
                let ms = monomials_up_to(nvars, degree);
                let expected = binomial((nvars as u64) + degree as u64, degree as u64);
                assert_eq!(ms.len() as u64, expected, "nvars={nvars} degree={degree}");
            }
        }
    }

    #[test]
    fn exact_degree_counts() {
        // Monomials of exact degree d in n vars: C(n + d - 1, d).
        assert_eq!(monomials_of_degree(3, 2).len(), 6);
        assert_eq!(monomials_of_degree(2, 3).len(), 4);
        assert_eq!(monomials_of_degree(4, 0).len(), 1);
    }

    #[test]
    fn sorted_and_unique() {
        let ms = monomials_up_to(3, 3);
        for w in ms.windows(2) {
            assert!(w[0] < w[1], "{} !< {}", w[0], w[1]);
        }
    }

    #[test]
    fn degrees_respected() {
        for m in monomials_up_to(3, 4) {
            assert!(m.degree() <= 4);
        }
        for m in monomials_of_degree(3, 4) {
            assert_eq!(m.degree(), 4);
        }
    }
}
