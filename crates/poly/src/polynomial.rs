//! Sparse multivariate polynomials.

use std::collections::BTreeMap;

use crate::Monomial;

/// Coefficients with absolute value below this are dropped after arithmetic.
const PRUNE_EPS: f64 = 0.0; // exact by default; use `prune` explicitly.

/// A sparse multivariate polynomial with `f64` coefficients.
///
/// Terms are stored in a `BTreeMap` keyed by [`Monomial`] in graded-lex
/// order, so iteration and printing are deterministic.
///
/// Arithmetic is provided through `&p + &q`, `&p - &q`, `&p * &q` operator
/// impls on references (polynomials are not `Copy`, and by-reference
/// operators avoid accidental clones in hot loops).
///
/// # Examples
///
/// ```
/// use cppll_poly::Polynomial;
///
/// let x = Polynomial::var(1, 0);
/// let p = &(&x * &x) - &Polynomial::constant(1, 1.0); // x² − 1
/// assert_eq!(p.eval(&[3.0]), 8.0);
/// assert_eq!(p.degree(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Polynomial {
    nvars: usize,
    terms: BTreeMap<Monomial, f64>,
}

impl Polynomial {
    /// The zero polynomial over `nvars` variables.
    pub fn zero(nvars: usize) -> Self {
        Polynomial {
            nvars,
            terms: BTreeMap::new(),
        }
    }

    /// The constant polynomial `c`.
    pub fn constant(nvars: usize, c: f64) -> Self {
        let mut p = Polynomial::zero(nvars);
        if c != 0.0 {
            p.terms.insert(Monomial::one(nvars), c);
        }
        p
    }

    /// The coordinate polynomial `x_i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= nvars`.
    pub fn var(nvars: usize, i: usize) -> Self {
        let mut p = Polynomial::zero(nvars);
        p.terms.insert(Monomial::var(nvars, i), 1.0);
        p
    }

    /// A single-term polynomial `c · m`.
    pub fn from_monomial(m: Monomial, c: f64) -> Self {
        let nvars = m.nvars();
        let mut p = Polynomial::zero(nvars);
        if c != 0.0 {
            p.terms.insert(m, c);
        }
        p
    }

    /// Builds a polynomial from `(exponents, coefficient)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if an exponent vector has the wrong length.
    pub fn from_terms(nvars: usize, terms: &[(&[u32], f64)]) -> Self {
        let mut p = Polynomial::zero(nvars);
        for (exps, c) in terms {
            assert_eq!(exps.len(), nvars, "exponent vector length mismatch");
            p.add_term(Monomial::new(exps.to_vec()), *c);
        }
        p
    }

    /// Number of variables of the ambient ring.
    pub fn nvars(&self) -> usize {
        self.nvars
    }

    /// Number of nonzero terms.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// `true` when all coefficients are zero.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// Total degree (0 for the zero polynomial).
    pub fn degree(&self) -> u32 {
        self.terms.keys().map(Monomial::degree).max().unwrap_or(0)
    }

    /// Coefficient of monomial `m` (zero if absent).
    pub fn coefficient(&self, m: &Monomial) -> f64 {
        self.terms.get(m).copied().unwrap_or(0.0)
    }

    /// Constant term.
    pub fn constant_term(&self) -> f64 {
        self.coefficient(&Monomial::one(self.nvars))
    }

    /// Adds `c` to the coefficient of `m`, removing the term if it cancels.
    ///
    /// # Panics
    ///
    /// Panics if `m.nvars() != self.nvars()`.
    pub fn add_term(&mut self, m: Monomial, c: f64) {
        assert_eq!(m.nvars(), self.nvars, "variable counts must match");
        if c == 0.0 {
            return;
        }
        let entry = self.terms.entry(m).or_insert(0.0);
        *entry += c;
        if entry.abs() <= PRUNE_EPS {
            let key = self
                .terms
                .iter()
                .find(|(_, &v)| v == 0.0)
                .map(|(k, _)| k.clone());
            if let Some(k) = key {
                self.terms.remove(&k);
            }
        }
    }

    /// Iterates over `(monomial, coefficient)` pairs in graded-lex order.
    pub fn terms(&self) -> impl Iterator<Item = (&Monomial, f64)> {
        self.terms.iter().map(|(m, &c)| (m, c))
    }

    /// Removes terms with `|coefficient| ≤ tol` and returns `self`.
    pub fn prune(mut self, tol: f64) -> Self {
        self.terms.retain(|_, c| c.abs() > tol);
        self
    }

    /// Largest absolute coefficient (0 for the zero polynomial).
    pub fn max_abs_coefficient(&self) -> f64 {
        self.terms.values().fold(0.0, |m, c| m.max(c.abs()))
    }

    /// Scalar multiple `s · self`.
    pub fn scale(&self, s: f64) -> Polynomial {
        if s == 0.0 {
            return Polynomial::zero(self.nvars);
        }
        Polynomial {
            nvars: self.nvars,
            terms: self.terms.iter().map(|(m, c)| (m.clone(), c * s)).collect(),
        }
    }

    /// Integer power `selfᵏ`.
    pub fn pow(&self, k: u32) -> Polynomial {
        let mut acc = Polynomial::constant(self.nvars, 1.0);
        for _ in 0..k {
            acc = &acc * self;
        }
        acc
    }

    /// Evaluates at a point.
    ///
    /// # Panics
    ///
    /// Panics if `point.len() != self.nvars()`.
    pub fn eval(&self, point: &[f64]) -> f64 {
        assert_eq!(point.len(), self.nvars, "point dimension mismatch");
        self.terms.iter().map(|(m, c)| c * m.eval(point)).sum()
    }

    /// Partial derivative `∂self/∂x_i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.nvars()`.
    pub fn partial_derivative(&self, i: usize) -> Polynomial {
        assert!(i < self.nvars, "variable index out of range");
        let mut out = Polynomial::zero(self.nvars);
        for (m, &c) in &self.terms {
            let e = m.exp(i);
            if e == 0 {
                continue;
            }
            let mut exps = m.exps().to_vec();
            exps[i] = e - 1;
            out.add_term(Monomial::new(exps), c * e as f64);
        }
        out
    }

    /// Gradient vector `[∂self/∂x₀, …]`.
    pub fn gradient(&self) -> Vec<Polynomial> {
        (0..self.nvars)
            .map(|i| self.partial_derivative(i))
            .collect()
    }

    /// Hessian matrix of second partials, `h[i][j] = ∂²self/∂xᵢ∂xⱼ`.
    pub fn hessian(&self) -> Vec<Vec<Polynomial>> {
        let grad = self.gradient();
        grad.iter()
            .map(|g| (0..self.nvars).map(|j| g.partial_derivative(j)).collect())
            .collect()
    }

    /// Lie derivative `∇self · f = Σᵢ (∂self/∂xᵢ) fᵢ` along the polynomial
    /// vector field `f`.
    ///
    /// # Panics
    ///
    /// Panics if `f.len() != self.nvars()` or any component lives in a
    /// different ring.
    pub fn lie_derivative(&self, f: &[Polynomial]) -> Polynomial {
        assert_eq!(f.len(), self.nvars, "vector field dimension mismatch");
        let mut out = Polynomial::zero(self.nvars);
        for (i, fi) in f.iter().enumerate() {
            assert_eq!(fi.nvars(), self.nvars, "vector field ring mismatch");
            let di = self.partial_derivative(i);
            if !di.is_zero() && !fi.is_zero() {
                out = &out + &(&di * fi);
            }
        }
        out
    }

    /// Full substitution `self(q₀(y), q₁(y), …)` where `q` maps every
    /// variable into a common target ring.
    ///
    /// # Panics
    ///
    /// Panics if `q.len() != self.nvars()` or the `qᵢ` live in different
    /// rings.
    pub fn compose(&self, q: &[Polynomial]) -> Polynomial {
        assert_eq!(q.len(), self.nvars, "substitution arity mismatch");
        let target_vars = q.first().map_or(self.nvars, Polynomial::nvars);
        for qi in q {
            assert_eq!(qi.nvars(), target_vars, "substitution ring mismatch");
        }
        // Cache powers of each qᵢ up to the maximum exponent used.
        let mut max_exp = vec![0u32; self.nvars];
        for m in self.terms.keys() {
            for (i, e) in max_exp.iter_mut().enumerate() {
                *e = (*e).max(m.exp(i));
            }
        }
        let mut powers: Vec<Vec<Polynomial>> = Vec::with_capacity(self.nvars);
        for (i, qi) in q.iter().enumerate() {
            let mut ps = Vec::with_capacity(max_exp[i] as usize + 1);
            ps.push(Polynomial::constant(target_vars, 1.0));
            for k in 1..=max_exp[i] {
                let next = &ps[(k - 1) as usize] * qi;
                ps.push(next);
            }
            powers.push(ps);
        }
        let mut out = Polynomial::zero(target_vars);
        for (m, &c) in &self.terms {
            let mut term = Polynomial::constant(target_vars, c);
            for (i, pows) in powers.iter().enumerate() {
                let e = m.exp(i);
                if e > 0 {
                    term = &term * &pows[e as usize];
                }
            }
            out = &out + &term;
        }
        out
    }

    /// Affine change of coordinates `self(x + shift)` (translation only).
    ///
    /// # Panics
    ///
    /// Panics if `shift.len() != self.nvars()`.
    pub fn shift(&self, shift: &[f64]) -> Polynomial {
        assert_eq!(shift.len(), self.nvars, "shift dimension mismatch");
        let subs: Vec<Polynomial> = (0..self.nvars)
            .map(|i| &Polynomial::var(self.nvars, i) + &Polynomial::constant(self.nvars, shift[i]))
            .collect();
        self.compose(&subs)
    }

    /// Diagonal rescaling `self(s₀ x₀, s₁ x₁, …)`.
    ///
    /// # Panics
    ///
    /// Panics if `scales.len() != self.nvars()`.
    pub fn scale_vars(&self, scales: &[f64]) -> Polynomial {
        assert_eq!(scales.len(), self.nvars, "scale dimension mismatch");
        let mut out = Polynomial::zero(self.nvars);
        for (m, &c) in &self.terms {
            let mut factor = c;
            for (i, &s) in scales.iter().enumerate() {
                factor *= s.powi(m.exp(i) as i32);
            }
            out.add_term(m.clone(), factor);
        }
        out
    }

    /// Embeds the polynomial into a larger ring with `nvars_new` variables
    /// (existing variables keep their indices).
    ///
    /// # Panics
    ///
    /// Panics if `nvars_new < self.nvars()`.
    pub fn extend(&self, nvars_new: usize) -> Polynomial {
        assert!(nvars_new >= self.nvars, "cannot shrink variable count");
        Polynomial {
            nvars: nvars_new,
            terms: self
                .terms
                .iter()
                .map(|(m, &c)| (m.extend(nvars_new), c))
                .collect(),
        }
    }

    /// The squared Euclidean norm polynomial `Σ xᵢ²` over `nvars` variables.
    pub fn norm_squared(nvars: usize) -> Polynomial {
        let mut p = Polynomial::zero(nvars);
        for i in 0..nvars {
            let mut exps = vec![0; nvars];
            exps[i] = 2;
            p.add_term(Monomial::new(exps), 1.0);
        }
        p
    }

    /// Returns `true` if every monomial has even total degree in each
    /// variable (a cheap necessary condition used in tests).
    pub fn has_even_exponents(&self) -> bool {
        self.terms
            .keys()
            .all(|m| m.exps().iter().all(|e| e % 2 == 0))
    }
}

impl std::ops::Add for &Polynomial {
    type Output = Polynomial;

    fn add(self, rhs: &Polynomial) -> Polynomial {
        assert_eq!(self.nvars, rhs.nvars, "variable counts must match");
        let mut out = self.clone();
        for (m, &c) in &rhs.terms {
            out.add_term(m.clone(), c);
        }
        out.terms.retain(|_, c| *c != 0.0);
        out
    }
}

impl std::ops::Sub for &Polynomial {
    type Output = Polynomial;

    fn sub(self, rhs: &Polynomial) -> Polynomial {
        assert_eq!(self.nvars, rhs.nvars, "variable counts must match");
        let mut out = self.clone();
        for (m, &c) in &rhs.terms {
            out.add_term(m.clone(), -c);
        }
        out.terms.retain(|_, c| *c != 0.0);
        out
    }
}

impl std::ops::Mul for &Polynomial {
    type Output = Polynomial;

    fn mul(self, rhs: &Polynomial) -> Polynomial {
        assert_eq!(self.nvars, rhs.nvars, "variable counts must match");
        let mut out = Polynomial::zero(self.nvars);
        for (ma, &ca) in &self.terms {
            for (mb, &cb) in &rhs.terms {
                out.add_term(ma.mul(mb), ca * cb);
            }
        }
        out.terms.retain(|_, c| *c != 0.0);
        out
    }
}

impl std::ops::Neg for &Polynomial {
    type Output = Polynomial;

    fn neg(self) -> Polynomial {
        self.scale(-1.0)
    }
}

impl cppll_json::ToJson for Polynomial {
    fn to_json(&self) -> cppll_json::Value {
        use cppll_json::Value;
        let terms: Vec<Value> = self
            .terms
            .iter()
            .map(|(m, &c)| {
                Value::Array(vec![
                    Value::Array(
                        m.exps()
                            .iter()
                            .map(|&e| Value::Number(f64::from(e)))
                            .collect(),
                    ),
                    Value::Number(c),
                ])
            })
            .collect();
        cppll_json::ObjectBuilder::new()
            .field("nvars", self.nvars)
            .field("terms", Value::Array(terms))
            .build()
    }
}

impl cppll_json::FromJson for Polynomial {
    fn from_json(v: &cppll_json::Value) -> Result<Self, cppll_json::DecodeError> {
        use cppll_json::{decode, DecodeError};
        let nvars: usize = decode::required(v, "nvars")?;
        let mut p = Polynomial::zero(nvars);
        for (i, term) in decode::array(decode::field(v, "terms")?)?
            .iter()
            .enumerate()
        {
            let pair = decode::array(term).map_err(|e| e.in_field(&format!("terms[{i}]")))?;
            if pair.len() != 2 {
                return Err(DecodeError::new(format!(
                    "terms[{i}]: expected an [exponents, coefficient] pair"
                )));
            }
            let exps: Vec<u32> =
                decode::vec_of(&pair[0]).map_err(|e| e.in_field(&format!("terms[{i}]")))?;
            if exps.len() != nvars {
                return Err(DecodeError::new(format!(
                    "terms[{i}]: exponent vector length {} does not match nvars {nvars}",
                    exps.len()
                )));
            }
            let c = decode::finite_f64(&pair[1]).map_err(|e| e.in_field(&format!("terms[{i}]")))?;
            // Insert directly (not via `add_term`) so the decoded polynomial
            // reproduces the serialised term map exactly, bit for bit.
            if p.terms.insert(Monomial::new(exps), c).is_some() {
                return Err(DecodeError::new(format!("terms[{i}]: duplicate monomial")));
            }
        }
        Ok(p)
    }
}

impl std::fmt::Display for Polynomial {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut first = true;
        // Highest-degree first for readability.
        for (m, &c) in self.terms.iter().rev() {
            let (sign, mag) = if c < 0.0 { ("-", -c) } else { ("+", c) };
            if first {
                if sign == "-" {
                    write!(f, "-")?;
                }
                first = false;
            } else {
                write!(f, " {sign} ")?;
            }
            if m.is_one() {
                write!(f, "{mag}")?;
            } else if mag == 1.0 {
                // Exactly 1.0 only: a near-1 coefficient printed as a bare
                // monomial would re-parse to exactly 1.0, breaking the
                // Display ↔ parse round-trip that sweep cells shipped to a
                // remote daemon rely on for bit-identical fingerprints.
                write!(f, "{m}")?;
            } else {
                write!(f, "{mag}*{m}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xy() -> (Polynomial, Polynomial) {
        (Polynomial::var(2, 0), Polynomial::var(2, 1))
    }

    #[test]
    fn ring_arithmetic() {
        let (x, y) = xy();
        let p = &x + &y;
        let q = &x - &y;
        let prod = &p * &q; // x² − y²
        assert_eq!(prod.eval(&[3.0, 2.0]), 5.0);
        assert_eq!(prod.degree(), 2);
        assert_eq!(prod.num_terms(), 2);
    }

    #[test]
    fn cancellation_removes_terms() {
        let (x, _) = xy();
        let p = &x - &x;
        assert!(p.is_zero());
        assert_eq!(p.degree(), 0);
    }

    #[test]
    fn derivative_of_product_rule() {
        let (x, y) = xy();
        let p = &x * &y; // xy
        let dp = p.partial_derivative(0);
        assert_eq!(dp, y);
    }

    #[test]
    fn lie_derivative_linear_field() {
        // V = x² + y², f = (-x, -y) ⇒ V̇ = -2x² - 2y².
        let v = Polynomial::norm_squared(2);
        let f = vec![
            Polynomial::var(2, 0).scale(-1.0),
            Polynomial::var(2, 1).scale(-1.0),
        ];
        let vdot = v.lie_derivative(&f);
        assert_eq!(vdot.eval(&[1.0, 2.0]), -10.0);
    }

    #[test]
    fn compose_affine_shift() {
        let (x, _) = xy();
        let p = &x * &x; // x²
        let shifted = p.shift(&[1.0, 0.0]); // (x+1)²
        assert_eq!(shifted.eval(&[2.0, 0.0]), 9.0);
        assert_eq!(shifted.coefficient(&Monomial::one(2)), 1.0);
    }

    #[test]
    fn compose_into_different_ring() {
        // p(t) = t², substitute t = x + y (2-var ring).
        let t = Polynomial::var(1, 0);
        let p = &t * &t;
        let (x, y) = xy();
        let q = p.compose(&[&x + &y]);
        assert_eq!(q.nvars(), 2);
        assert_eq!(q.eval(&[1.0, 2.0]), 9.0);
    }

    #[test]
    fn scale_vars_substitutes_diagonally() {
        let (x, y) = xy();
        let p = &(&x * &x) + &y; // x² + y
        let q = p.scale_vars(&[2.0, 3.0]); // 4x² + 3y
        assert_eq!(q.eval(&[1.0, 1.0]), 7.0);
    }

    #[test]
    fn extend_keeps_values() {
        let (x, y) = xy();
        let p = &x * &y;
        let p3 = p.extend(3);
        assert_eq!(p3.eval(&[2.0, 3.0, 99.0]), 6.0);
    }

    #[test]
    fn hessian_of_quadratic_is_constant() {
        let v = Polynomial::norm_squared(2);
        let h = v.hessian();
        assert_eq!(h[0][0], Polynomial::constant(2, 2.0));
        assert_eq!(h[0][1], Polynomial::zero(2));
    }

    #[test]
    fn display_round_trips_visually() {
        let (x, y) = xy();
        let p = &(&(&x * &x) - &y.scale(2.0)) + &Polynomial::constant(2, 1.0);
        let s = p.to_string();
        assert!(s.contains("x0^2"), "got {s}");
        assert!(s.contains("2*x1"), "got {s}");
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let (x, y) = xy();
        let p = &x + &y;
        assert_eq!(p.pow(3), &(&p * &p) * &p);
        assert_eq!(p.pow(0), Polynomial::constant(2, 1.0));
    }
}
