//! Newton-polytope pruning of Gram-matrix monomial bases.
//!
//! If `p = zᵀQz` is a sum of squares `p = Σᵢ qᵢ²`, a classical result of
//! Reznick says every `qᵢ` has its support inside **half** the Newton
//! polytope of `p`: `supp(qᵢ) ⊆ ½·New(p)` where `New(p) = conv(supp(p))`.
//! A Gram basis monomial `m` with `2m ∉ New(p)` therefore never appears in
//! any SOS decomposition of `p` and can be deleted from the basis without
//! losing certificates. When only a superset `S ⊇ supp(p)` of the support
//! is known (the target contains decision coefficients), `New(p) ⊆ conv(S)`
//! and the same filter against `conv(S)` remains sound.
//!
//! Exactness: exponents are small non-negative integers (`u32`), so for one
//! and two variables the polytope is computed as an exact integer convex
//! hull and membership of `2m` is decided with `i128` cross products — no
//! rounding. For three or more variables membership is decided by an exact
//! rational phase-1 simplex over the convex-combination system
//! `Σλᵢsᵢ = 2m, Σλᵢ = 1, λ ≥ 0` (Bland's rule, `i128` fractions) — still no
//! floating point. Only when the support is too large for the LP to be
//! worthwhile (or a fraction would overflow `i128`, which small exponent
//! data never does in practice) does the test fall back to a conservative
//! outer approximation — the per-variable exponent box and the total-degree
//! slab, every facet of which is a valid half-plane containing `conv(S)`.
//! An outer approximation can only keep *extra* monomials, never drop a
//! needed one, so the fallback is sound in every dimension.
//!
//! [`prune_gram_basis`] additionally runs the diagonal-consistency
//! iteration: if `x^{2m}` is not in `S` and no other surviving pair of
//! basis monomials multiplies to `x^{2m}`, the diagonal entry `Q_{mm}` is
//! forced to zero by the coefficient equations, and positive
//! semidefiniteness then zeroes the whole row and column — `m` can go, and
//! its removal may strand further monomials, so the rule iterates to a
//! fixed point.

use std::collections::BTreeSet;

use crate::Monomial;

/// Outer approximation of the convex hull of a set of exponent vectors,
/// exact for one and two variables.
///
/// # Examples
///
/// ```
/// use cppll_poly::{Monomial, NewtonPolytope};
///
/// // Motzkin polynomial support: x⁴y², x²y⁴, x²y², 1.
/// let support: Vec<Monomial> = [[4u32, 2], [2, 4], [2, 2], [0, 0]]
///     .iter()
///     .map(|e| Monomial::new(e.to_vec()))
///     .collect();
/// let np = NewtonPolytope::of_support(2, &support);
/// // xy is in the half polytope, x is not.
/// assert!(np.contains_doubled(&Monomial::new(vec![1, 1])));
/// assert!(!np.contains_doubled(&Monomial::new(vec![1, 0])));
/// ```
#[derive(Debug, Clone)]
pub struct NewtonPolytope {
    nvars: usize,
    /// Exact hull vertices in counter-clockwise order (`nvars == 2` only;
    /// for `nvars <= 1` the box bounds are already exact).
    hull: Option<Vec<[i64; 2]>>,
    /// Deduplicated support points for the exact LP membership test
    /// (`nvars >= 3`, support small enough — see [`LP_SUPPORT_LIMIT`]).
    points: Vec<Vec<i64>>,
    min_exp: Vec<u32>,
    max_exp: Vec<u32>,
    min_total: u32,
    max_total: u32,
    /// An empty support set spans no polytope: it contains nothing.
    empty: bool,
}

/// Above this many distinct support points the per-monomial LP membership
/// test is skipped in favour of the box-and-slab outer approximation. The
/// verification pipeline's supports are a few dozen to a few hundred points;
/// the limit exists so pathological dense supports stay cheap.
const LP_SUPPORT_LIMIT: usize = 1024;

impl NewtonPolytope {
    /// Builds the polytope of a support set (exponent vectors of the
    /// monomials that may appear in the target polynomial).
    pub fn of_support<'a, I>(nvars: usize, support: I) -> Self
    where
        I: IntoIterator<Item = &'a Monomial>,
    {
        let mut min_exp = vec![u32::MAX; nvars];
        let mut max_exp = vec![0u32; nvars];
        let mut min_total = u32::MAX;
        let mut max_total = 0u32;
        let mut points2: Vec<[i64; 2]> = Vec::new();
        let mut points: Vec<Vec<i64>> = Vec::new();
        let mut empty = true;
        for m in support {
            empty = false;
            let d = m.degree();
            min_total = min_total.min(d);
            max_total = max_total.max(d);
            for (i, bound) in min_exp.iter_mut().enumerate() {
                *bound = (*bound).min(m.exp(i));
            }
            for (i, bound) in max_exp.iter_mut().enumerate() {
                *bound = (*bound).max(m.exp(i));
            }
            if nvars == 2 {
                points2.push([m.exp(0) as i64, m.exp(1) as i64]);
            } else if nvars >= 3 {
                points.push((0..nvars).map(|i| m.exp(i) as i64).collect());
            }
        }
        if empty {
            min_exp = vec![0; nvars];
            min_total = 0;
        }
        let hull = (nvars == 2 && !empty).then(|| convex_hull(&mut points2));
        points.sort_unstable();
        points.dedup();
        if points.len() > LP_SUPPORT_LIMIT {
            points.clear(); // Too big for the LP: box-and-slab only.
        }
        NewtonPolytope {
            nvars,
            hull,
            points,
            min_exp,
            max_exp,
            min_total,
            max_total,
            empty,
        }
    }

    /// Is the doubled exponent vector `2·m` inside the polytope?
    pub fn contains_doubled(&self, m: &Monomial) -> bool {
        let p: Vec<i64> = (0..self.nvars).map(|i| 2 * m.exp(i) as i64).collect();
        self.contains_point(&p)
    }

    /// Is the shifted doubled exponent vector `2·m + α` inside the polytope?
    /// This is the membership test behind support-driven multiplier bases:
    /// a multiplier basis monomial `m` paired with guard monomial `α`
    /// contributes coefficient rows only at `2m + α` (diagonal) and
    /// `m + m' + α` (off-diagonal), so `2m + α` outside the target polytope
    /// means the diagonal entry can never carry target mass.
    pub fn contains_shifted_doubled(&self, m: &Monomial, shift: &Monomial) -> bool {
        let p: Vec<i64> = (0..self.nvars)
            .map(|i| 2 * m.exp(i) as i64 + shift.exp(i) as i64)
            .collect();
        self.contains_point(&p)
    }

    /// Is an arbitrary integer exponent point inside the polytope? Uses the
    /// same exactness ladder as [`NewtonPolytope::contains_doubled`]: exact
    /// integer hull for two variables, exact rational LP for three or more,
    /// box-and-slab outer approximation as the sound fallback.
    ///
    /// # Panics
    ///
    /// Panics if `p.len()` differs from the polytope's variable count.
    pub fn contains_point(&self, p: &[i64]) -> bool {
        assert_eq!(p.len(), self.nvars, "point dimension mismatch");
        if self.empty {
            return false;
        }
        let total: i64 = p.iter().sum();
        if total < self.min_total as i64 || total > self.max_total as i64 {
            return false;
        }
        for (i, &pi) in p.iter().enumerate() {
            if pi < self.min_exp[i] as i64 || pi > self.max_exp[i] as i64 {
                return false;
            }
        }
        match &self.hull {
            Some(hull) => hull_contains(hull, [p[0], p[1]]),
            None if !self.points.is_empty() => {
                // Fast path: `p` is itself a support point (the common case
                // on dense supports) — trivially inside, no LP needed.
                if self.points.binary_search(&p.to_vec()).is_ok() {
                    return true;
                }
                // `None` means the exact LP hit an `i128` overflow — keep
                // the point (outer-approximation semantics: sound).
                point_in_hull_lp(&self.points, p).unwrap_or(true)
            }
            None => true,
        }
    }
}

// ---------------------------------------------------------------------------
// Exact rational LP membership (dimension ≥ 3)
// ---------------------------------------------------------------------------

/// Reduced `i128` fraction. All operations are overflow-checked: `None`
/// propagates to the caller, which then *keeps* the monomial (the sound
/// direction). With exponent data (small non-negative integers) overflow
/// does not occur in practice; the checks are a guarantee, not a code path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Frac {
    num: i128,
    den: i128, // > 0
}

impl Frac {
    fn new(num: i128, den: i128) -> Option<Frac> {
        if den == 0 {
            return None;
        }
        let (num, den) = if den < 0 {
            (num.checked_neg()?, den.checked_neg()?)
        } else {
            (num, den)
        };
        let g = gcd(num.unsigned_abs(), den.unsigned_abs()).max(1);
        Some(Frac {
            num: num / g as i128,
            den: den / g as i128,
        })
    }

    fn int(v: i128) -> Frac {
        Frac { num: v, den: 1 }
    }

    fn is_zero(self) -> bool {
        self.num == 0
    }

    fn is_neg(self) -> bool {
        self.num < 0
    }

    fn is_pos(self) -> bool {
        self.num > 0
    }

    fn sub(self, rhs: Frac) -> Option<Frac> {
        Frac::new(
            self.num
                .checked_mul(rhs.den)?
                .checked_sub(rhs.num.checked_mul(self.den)?)?,
            self.den.checked_mul(rhs.den)?,
        )
    }

    fn mul(self, rhs: Frac) -> Option<Frac> {
        Frac::new(
            self.num.checked_mul(rhs.num)?,
            self.den.checked_mul(rhs.den)?,
        )
    }

    fn div(self, rhs: Frac) -> Option<Frac> {
        if rhs.num == 0 {
            return None;
        }
        Frac::new(
            self.num.checked_mul(rhs.den)?,
            self.den.checked_mul(rhs.num)?,
        )
    }

    /// `self < rhs` (exact cross-multiplication compare).
    fn lt(self, rhs: Frac) -> Option<bool> {
        Some(self.num.checked_mul(rhs.den)? < rhs.num.checked_mul(self.den)?)
    }
}

fn gcd(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// Is `p` a convex combination of `points`? Decided exactly by a phase-1
/// simplex on `Σλᵢsᵢ = p, Σλᵢ = 1, λ ≥ 0` with one artificial variable per
/// row and Bland's anti-cycling rule: the combination exists iff the
/// artificials can be driven to zero. Returns `None` if an intermediate
/// fraction would overflow `i128` (callers treat that as "maybe inside").
fn point_in_hull_lp(points: &[Vec<i64>], p: &[i64]) -> Option<bool> {
    let d = p.len();
    let m = d + 1; // equality rows: one per coordinate + the Σλ = 1 row
    let n = points.len();
    // Tableau in canonical form w.r.t. the artificial basis: rows [A | b].
    // Artificial columns are implicit — column `n + i` is the i-th unit
    // vector, tracked through `basis` instead of stored.
    let mut rows: Vec<Vec<Frac>> = (0..m)
        .map(|i| {
            let mut r: Vec<Frac> = (0..n)
                .map(|j| Frac::int(if i < d { i128::from(points[j][i]) } else { 1 }))
                .collect();
            r.push(Frac::int(if i < d { i128::from(p[i]) } else { 1 }));
            r
        })
        .collect();
    let mut basis: Vec<usize> = (n..n + m).collect();
    // b ≥ 0 holds by construction (exponents are non-negative), so the
    // artificial basis is primal feasible from the start.
    loop {
        // Reduced cost of real column j under phase-1 costs (1 on
        // artificials, 0 on real columns): −Σ{rows i with artificial basis}.
        let mut red = vec![Frac::int(0); n];
        for (row, &b) in rows.iter().zip(&basis) {
            if b >= n {
                for (rc, v) in red.iter_mut().zip(&row[..n]) {
                    *rc = rc.sub(*v)?;
                }
            }
        }
        // Bland: first improving column.
        let entering = red.iter().position(|r| r.is_neg());
        let Some(j) = entering else {
            // Optimal: feasible iff every artificial still basic sits at 0.
            let objective_zero = (0..m).all(|i| basis[i] < n || rows[i][n].is_zero());
            return Some(objective_zero);
        };
        // Ratio test (Bland tie-break: smallest basis index).
        let mut leave: Option<(usize, Frac)> = None;
        for i in 0..m {
            if !rows[i][j].is_pos() {
                continue;
            }
            let ratio = rows[i][n].div(rows[i][j])?;
            let better = match &leave {
                None => true,
                Some((li, best)) => ratio.lt(*best)? || (ratio == *best && basis[i] < basis[*li]),
            };
            if better {
                leave = Some((i, ratio));
            }
        }
        // Phase-1 objective is bounded below by 0, so a pivot column always
        // has a positive entry; defend anyway.
        let Some((r, _)) = leave else {
            return Some(false);
        };
        // Pivot on (r, j).
        let piv = rows[r][j];
        for v in rows[r].iter_mut() {
            *v = v.div(piv)?;
        }
        let pivot_row = rows[r].clone();
        for (i, row) in rows.iter_mut().enumerate() {
            if i == r || row[j].is_zero() {
                continue;
            }
            let factor = row[j];
            for (v, pv) in row.iter_mut().zip(&pivot_row) {
                *v = v.sub(factor.mul(*pv)?)?;
            }
        }
        basis[r] = j;
    }
}

/// Andrew's monotone chain on integer points; returns the hull in
/// counter-clockwise order with interior and collinear points removed.
fn convex_hull(points: &mut Vec<[i64; 2]>) -> Vec<[i64; 2]> {
    points.sort_unstable();
    points.dedup();
    let n = points.len();
    if n <= 2 {
        return points.clone();
    }
    // Lower and upper chains in separate vectors: a shared vector would let
    // the upper pass pop finished lower-hull vertices when a collinear point
    // sits on the bottom edge (e.g. (1,0) between (0,0) and (2,0)), silently
    // shrinking the hull.
    let mut lower: Vec<[i64; 2]> = Vec::with_capacity(n);
    for &p in points.iter() {
        while lower.len() >= 2 && cross(lower[lower.len() - 2], lower[lower.len() - 1], p) <= 0 {
            lower.pop();
        }
        lower.push(p);
    }
    let mut upper: Vec<[i64; 2]> = Vec::with_capacity(n);
    for &p in points.iter().rev() {
        while upper.len() >= 2 && cross(upper[upper.len() - 2], upper[upper.len() - 1], p) <= 0 {
            upper.pop();
        }
        upper.push(p);
    }
    // Each chain ends where the other begins.
    lower.pop();
    upper.pop();
    lower.extend(upper);
    if lower.len() < 3 {
        // Fully collinear cloud: the chains degenerate; the hull is the
        // segment between the lexicographic extremes (sorted order is
        // monotone along a line).
        return vec![points[0], points[n - 1]];
    }
    lower
}

/// Cross product (b − a) × (c − a); positive means `c` lies strictly left
/// of the directed line a→b. Exponents fit in `u32`, so the products fit
/// comfortably in `i128` — the test is exact.
fn cross(a: [i64; 2], b: [i64; 2], c: [i64; 2]) -> i128 {
    let abx = (b[0] - a[0]) as i128;
    let aby = (b[1] - a[1]) as i128;
    let acx = (c[0] - a[0]) as i128;
    let acy = (c[1] - a[1]) as i128;
    abx * acy - aby * acx
}

fn hull_contains(hull: &[[i64; 2]], p: [i64; 2]) -> bool {
    match hull.len() {
        0 => false,
        1 => hull[0] == p,
        2 => {
            // Degenerate hull: the segment between the two points.
            let (a, b) = (hull[0], hull[1]);
            cross(a, b, p) == 0
                && p[0] >= a[0].min(b[0])
                && p[0] <= a[0].max(b[0])
                && p[1] >= a[1].min(b[1])
                && p[1] <= a[1].max(b[1])
        }
        n => (0..n).all(|i| cross(hull[i], hull[(i + 1) % n], p) >= 0),
    }
}

/// Prunes a Gram basis for a target polynomial with support contained in
/// `support`: first the Newton-polytope filter (`2m ∈ conv(support)`), then
/// the diagonal-consistency iteration described in the module docs. The
/// surviving monomials keep their original order.
///
/// # Examples
///
/// ```
/// use cppll_poly::{monomials_up_to, prune_gram_basis, Monomial};
///
/// // Motzkin polynomial: the degree-3 basis (10 monomials) shrinks to the
/// // classical four: 1, xy, x²y, xy².
/// let support: Vec<Monomial> = [[4u32, 2], [2, 4], [2, 2], [0, 0]]
///     .iter()
///     .map(|e| Monomial::new(e.to_vec()))
///     .collect();
/// let pruned = prune_gram_basis(&support, &monomials_up_to(2, 3));
/// assert_eq!(pruned.len(), 4);
/// ```
pub fn prune_gram_basis(support: &[Monomial], basis: &[Monomial]) -> Vec<Monomial> {
    let nvars = basis
        .first()
        .map(|m| m.exps().len())
        .or_else(|| support.first().map(|m| m.exps().len()))
        .unwrap_or(0);
    let np = NewtonPolytope::of_support(nvars, support.iter());
    let mut kept: Vec<Monomial> = basis
        .iter()
        .filter(|m| np.contains_doubled(m))
        .cloned()
        .collect();
    let support_set: BTreeSet<&Monomial> = support.iter().collect();
    loop {
        // Pairwise products of *distinct* surviving basis monomials; a
        // diagonal square x^{2m} must either carry a coefficient of the
        // target (2m ∈ support) or be cancellable by one of these.
        let mut pair_products: BTreeSet<Monomial> = BTreeSet::new();
        for (i, a) in kept.iter().enumerate() {
            for b in kept.iter().skip(i + 1) {
                pair_products.insert(a.mul(b));
            }
        }
        let survivors: Vec<Monomial> = kept
            .iter()
            .filter(|m| {
                let sq = m.mul(m);
                support_set.contains(&sq) || pair_products.contains(&sq)
            })
            .cloned()
            .collect();
        if survivors.len() == kept.len() {
            return survivors;
        }
        kept = survivors;
    }
}

/// Prunes the candidate basis of an S-procedure multiplier `σ` appearing as
/// `σ·h` inside a constraint whose non-Gram ("fixed") support is contained
/// in `target_support`.
///
/// A multiplier basis monomial `m` paired with a factor monomial
/// `α ∈ supp(h)` only ever touches coefficient rows at `m·m'·α`; its
/// diagonal rows are `2m + α`. The polytope filter keeps `m` iff **some**
/// `α` places `2m + α` inside `conv(target_support)` — the shifted
/// analogue of Reznick's half-polytope rule. The quantifier is
/// deliberately existential: a row outside the target polytope may still
/// cancel against the constraint's *other* Grams (the main Gram's basis is
/// derived from the full expression support, not the fixed part, so its
/// pair products routinely leave `conv(target_support)`), but a monomial
/// none of whose diagonal rows even touches the target has no reason to
/// carry mass.
///
/// Then the same diagonal-consistency iteration as [`prune_gram_basis`]
/// runs on exact supports: a surviving `m` needs, for every factor
/// monomial `α`, the row `2m + α` to carry a target coefficient, be
/// absorbable by a sibling row from `extra_rows` (the caller passes the
/// pair products of the other Grams in the constraint), or be cancellable
/// by a distinct surviving pair `a·b·α'` of this multiplier.
///
/// Unlike constraint-Gram pruning, both phases are a *relaxation
/// restriction*: they never invalidate a found certificate (any σ over the
/// restricted basis is still SOS), but they can in principle lose
/// certificates whose multiplier mass cancels in ways the producer
/// analysis does not see (e.g. between two diagonal entries of the same
/// multiplier under opposite-sign factor terms). Callers keep the full
/// degree simplex available behind a legacy mode for bisection.
pub fn prune_multiplier_basis(
    target_support: &[Monomial],
    extra_rows: &[Monomial],
    factor_support: &[Monomial],
    basis: &[Monomial],
) -> Vec<Monomial> {
    if target_support.is_empty() || factor_support.is_empty() {
        return Vec::new();
    }
    let nvars = basis
        .first()
        .map(|m| m.exps().len())
        .unwrap_or_else(|| target_support[0].exps().len());
    let np = NewtonPolytope::of_support(nvars, target_support.iter());
    let mut kept: Vec<Monomial> = basis
        .iter()
        .filter(|m| {
            factor_support
                .iter()
                .any(|alpha| np.contains_shifted_doubled(m, alpha))
        })
        .cloned()
        .collect();
    let absorbable: BTreeSet<&Monomial> = target_support.iter().chain(extra_rows).collect();
    loop {
        // Rows reachable by off-diagonal products of *distinct* surviving
        // monomials, under every factor shift.
        let mut pair_rows: BTreeSet<Monomial> = BTreeSet::new();
        for (i, a) in kept.iter().enumerate() {
            for b in kept.iter().skip(i + 1) {
                let ab = a.mul(b);
                for alpha in factor_support {
                    pair_rows.insert(ab.mul(alpha));
                }
            }
        }
        let survivors: Vec<Monomial> = kept
            .iter()
            .filter(|m| {
                let sq = m.mul(m);
                factor_support.iter().all(|alpha| {
                    let row = sq.mul(alpha);
                    absorbable.contains(&row) || pair_rows.contains(&row)
                })
            })
            .cloned()
            .collect();
        if survivors.len() == kept.len() {
            return survivors;
        }
        kept = survivors;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monomials_up_to;

    fn mono(exps: &[u32]) -> Monomial {
        Monomial::new(exps.to_vec())
    }

    #[test]
    fn univariate_interval_is_exact() {
        // p = x⁴ + 1: polytope [0, 4]; all of 1, x, x² stay under the hull
        // filter and the diagonal rule keeps x (1·x² cancels the square).
        let support = vec![mono(&[4]), mono(&[0])];
        let pruned = prune_gram_basis(&support, &monomials_up_to(1, 2));
        assert_eq!(pruned, vec![mono(&[0]), mono(&[1]), mono(&[2])]);
        // p = x⁴ + x²: the constant falls below min-degree, x and x² stay.
        let support = vec![mono(&[4]), mono(&[2])];
        let pruned = prune_gram_basis(&support, &monomials_up_to(1, 2));
        assert_eq!(pruned, vec![mono(&[1]), mono(&[2])]);
    }

    #[test]
    fn motzkin_basis_shrinks_to_classical_four() {
        let support = vec![mono(&[4, 2]), mono(&[2, 4]), mono(&[2, 2]), mono(&[0, 0])];
        let pruned = prune_gram_basis(&support, &monomials_up_to(2, 3));
        assert_eq!(
            pruned,
            vec![mono(&[0, 0]), mono(&[1, 1]), mono(&[1, 2]), mono(&[2, 1])]
        );
    }

    #[test]
    fn diagonal_rule_iterates_to_fixpoint() {
        // p = x⁶ + x: support {6, 1}. Hull keeps {x, x², x³} (2m ∈ [1, 6]).
        // No square 2, 4 or 6... x³ has 2m = 6 ∈ S, so x³ stays; x² has
        // 2m = 4 ∉ S but x·x³ = x⁴ ≠ x⁴? -- recompute: pairs from {x,x²,x³}
        // are x³, x⁴, x⁵. So x² (square x⁴) survives via x·x³; x (square
        // x²) needs a pair with product x², none exists → x goes. Then x²'s
        // square x⁴ needs x·x³ which lost x → x² goes. Only x³ remains.
        let support = vec![mono(&[6]), mono(&[1])];
        let pruned = prune_gram_basis(&support, &monomials_up_to(1, 3));
        assert_eq!(pruned, vec![mono(&[3])]);
    }

    #[test]
    fn three_vars_prunes_off_segment_monomials() {
        // 3 vars: p = x²y²z² + x²: the hull is the segment from (2,2,2) to
        // (2,0,0), so only xyz and x have doubled exponents on it.
        let support = vec![mono(&[2, 2, 2]), mono(&[2, 0, 0])];
        let pruned = prune_gram_basis(&support, &monomials_up_to(3, 3));
        assert_eq!(pruned, vec![mono(&[1, 0, 0]), mono(&[1, 1, 1])]);
        // Soundness: x²y²z² + x² = (xyz)² + x², both squares' roots present.
    }

    #[test]
    fn lp_membership_agrees_with_planar_hull() {
        // Embed a planar cloud as the z = 0 slice of a 3-var support and
        // check the LP decides membership exactly like the 2-D integer hull.
        let pts = [[0i64, 0], [6, 0], [0, 6], [2, 2], [4, 1], [1, 4], [3, 3]];
        let mut cloud: Vec<[i64; 2]> = pts.to_vec();
        let hull = convex_hull(&mut cloud);
        let lifted: Vec<Vec<i64>> = pts.iter().map(|p| vec![p[0], p[1], 0]).collect();
        for x in 0..=7i64 {
            for y in 0..=7i64 {
                let expect = hull_contains(&hull, [x, y]);
                let got = point_in_hull_lp(&lifted, &[x, y, 0]).expect("no overflow");
                assert_eq!(got, expect, "({x},{y})");
                // Off the plane nothing is inside.
                assert_eq!(point_in_hull_lp(&lifted, &[x, y, 1]), Some(false));
            }
        }
    }

    #[test]
    fn lp_membership_prunes_axis_heavy_monomials() {
        // Shape of the PLL decrease constraints (3 states w₁, w₂, e): the
        // support reaches degree 4 in w₁, w₂ but only degree 3 on the
        // e-axis. The degree envelope keeps e² in the Gram basis; the exact
        // polytope knows 2·e² = e⁴ is outside and prunes it.
        let support = [
            mono(&[0, 0, 0]),
            mono(&[4, 0, 0]),
            mono(&[0, 4, 0]),
            mono(&[2, 2, 0]),
            mono(&[0, 0, 3]),
            mono(&[1, 1, 1]),
            mono(&[2, 0, 1]),
        ];
        let np = NewtonPolytope::of_support(3, support.iter());
        assert!(np.contains_doubled(&mono(&[1, 1, 0])));
        assert!(np.contains_doubled(&mono(&[2, 0, 0])));
        // e itself stays: 2·e = e² lies on the axis segment [0, 3].
        assert!(np.contains_doubled(&mono(&[0, 0, 1])));
        assert!(
            !np.contains_doubled(&mono(&[0, 0, 2])),
            "e² must prune: e⁴ ∉ hull"
        );
    }

    #[test]
    fn empty_support_prunes_everything() {
        let pruned = prune_gram_basis(&[], &monomials_up_to(2, 2));
        assert!(pruned.is_empty());
    }

    #[test]
    fn hull_membership_matches_brute_force_halfplanes() {
        // Random-ish integer point clouds: hull membership must agree with
        // the definition "inside every edge half-plane".
        let pts = [[0i64, 0], [6, 0], [0, 6], [2, 2], [4, 1], [1, 4], [3, 3]];
        let mut cloud: Vec<[i64; 2]> = pts.to_vec();
        let hull = convex_hull(&mut cloud);
        assert_eq!(hull.len(), 3, "triangle hull expected: {hull:?}");
        for x in 0..=7i64 {
            for y in 0..=7i64 {
                let inside = hull_contains(&hull, [x, y]);
                let expect = x >= 0 && y >= 0 && x + y <= 6;
                assert_eq!(inside, expect, "({x},{y})");
            }
        }
    }

    #[test]
    fn contains_point_generalises_contains_doubled() {
        let support = [
            mono(&[0, 0, 0]),
            mono(&[4, 0, 0]),
            mono(&[0, 4, 0]),
            mono(&[2, 2, 0]),
            mono(&[0, 0, 3]),
            mono(&[1, 1, 1]),
            mono(&[2, 0, 1]),
        ];
        let np = NewtonPolytope::of_support(3, support.iter());
        for m in monomials_up_to(3, 2) {
            let p: Vec<i64> = (0..3).map(|i| 2 * m.exp(i) as i64).collect();
            assert_eq!(np.contains_doubled(&m), np.contains_point(&p), "{m}");
        }
        // Shifted membership: 2·(1,0,0) + (1,1,0) = (3,1,0) is inside the
        // w-plane quadrilateral; 2·(0,0,1) + (0,0,2) = e⁴ overshoots the
        // e-axis segment [0, 3].
        assert!(np.contains_shifted_doubled(&mono(&[1, 0, 0]), &mono(&[1, 1, 0])));
        assert!(!np.contains_shifted_doubled(&mono(&[0, 0, 1]), &mono(&[0, 0, 2])));
    }

    #[test]
    fn multiplier_pruning_respects_shifted_polytope() {
        // Homogeneous quadratic target {x², xy, y²}, guard factor {1, x²}:
        // every candidate has one diagonal row on the segment x+y=2, so the
        // existential polytope filter keeps all of them — but the bare
        // consistency iteration (no extra rows) then finds each candidate's
        // *other* diagonal row unabsorbable (m = 1 emits the constant,
        // m = x emits x⁴, m = y emits x²y²) and empties the basis: σ ≡ 0
        // is the honest answer.
        let target = vec![mono(&[2, 0]), mono(&[1, 1]), mono(&[0, 2])];
        let factor = vec![mono(&[0, 0]), mono(&[2, 0])];
        let pruned = prune_multiplier_basis(&target, &[], &factor, &monomials_up_to(2, 1));
        assert!(pruned.is_empty(), "expected empty, got {pruned:?}");

        // Widening the target so every diagonal row lands in it keeps the
        // full degree-1 simplex alive.
        let mut wide = target.clone();
        wide.extend([mono(&[0, 0]), mono(&[4, 0]), mono(&[2, 2]), mono(&[0, 4])]);
        let kept = prune_multiplier_basis(&wide, &[], &factor, &monomials_up_to(2, 1));
        assert_eq!(kept, monomials_up_to(2, 1));
    }

    #[test]
    fn multiplier_pruning_uses_extra_rows_for_absorption() {
        // Target {1, x², y²}, guard g = x − 3 with supp {1, x}: a constant
        // multiplier emits the odd row x, which the target alone cannot
        // absorb — but a main Gram over {1, x, y} produces 1·x = x. With
        // that row offered as absorbable the constant survives; without it
        // the whole basis dies.
        let target = vec![mono(&[0, 0]), mono(&[2, 0]), mono(&[0, 2])];
        let factor = vec![mono(&[0, 0]), mono(&[1, 0])];
        let basis = monomials_up_to(2, 1);
        let bare = prune_multiplier_basis(&target, &[], &factor, &basis);
        assert!(bare.is_empty(), "expected empty, got {bare:?}");
        let main_rows = [mono(&[1, 0]), mono(&[0, 1]), mono(&[1, 1])];
        let with_main = prune_multiplier_basis(&target, &main_rows, &factor, &basis);
        assert_eq!(with_main, vec![mono(&[0, 0])]);
    }

    #[test]
    fn multiplier_pruning_keeps_factor_one_equivalent_to_gram_rule() {
        // With factor {1} the shifted rule degenerates to the plain Newton
        // filter + diagonal iteration of `prune_gram_basis`.
        let target = vec![mono(&[4, 2]), mono(&[2, 4]), mono(&[2, 2]), mono(&[0, 0])];
        let factor = vec![mono(&[0, 0])];
        let via_mult = prune_multiplier_basis(&target, &[], &factor, &monomials_up_to(2, 3));
        let via_gram = prune_gram_basis(&target, &monomials_up_to(2, 3));
        assert_eq!(via_mult, via_gram);
    }

    #[test]
    fn multiplier_pruning_empty_inputs() {
        assert!(
            prune_multiplier_basis(&[], &[], &[mono(&[0, 0])], &monomials_up_to(2, 2)).is_empty()
        );
        assert!(
            prune_multiplier_basis(&[mono(&[0, 0])], &[], &[], &monomials_up_to(2, 2)).is_empty()
        );
    }

    #[test]
    fn collinear_point_on_hull_edge_does_not_evict_vertices() {
        // (1,0) lies on the bottom edge (0,0)–(2,0): the upper-chain pass
        // must not pop the extreme vertex (2,0) out of the finished lower
        // chain. Regression test for the shared-vector monotone chain bug.
        let mut cloud = vec![[0i64, 0], [1, 0], [2, 0], [0, 2]];
        let hull = convex_hull(&mut cloud);
        assert_eq!(hull.len(), 3, "triangle expected: {hull:?}");
        for v in [[0i64, 0], [2, 0], [0, 2]] {
            assert!(hull_contains(&hull, v), "{v:?} must stay inside");
        }
        assert!(hull_contains(&hull, [1, 1]));
        assert!(!hull_contains(&hull, [2, 1]));
        // The membership consequence that surfaced the bug: x stays in the
        // Gram basis for support {1, x, x², y²}.
        let support = [mono(&[0, 0]), mono(&[1, 0]), mono(&[2, 0]), mono(&[0, 2])];
        let np = NewtonPolytope::of_support(2, support.iter());
        assert!(np.contains_doubled(&mono(&[1, 0])));
    }

    #[test]
    fn collinear_support_degenerates_to_segment() {
        // Support on a line: x⁴y² and x²y⁴ (and midpoint x³y³).
        let support = [mono(&[4, 2]), mono(&[2, 4]), mono(&[3, 3])];
        let np = NewtonPolytope::of_support(2, support.iter());
        assert!(np.contains_doubled(&mono(&[2, 1])));
        assert!(np.contains_doubled(&mono(&[1, 2])));
        assert!(!np.contains_doubled(&mono(&[2, 2])));
        assert!(!np.contains_doubled(&mono(&[1, 1])));
    }
}
