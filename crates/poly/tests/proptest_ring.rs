//! Property-based tests: `Polynomial` is a commutative ring, calculus rules
//! hold, and evaluation is a ring homomorphism.

use cppll_poly::{monomials_up_to, Polynomial};
use proptest::prelude::*;

const NVARS: usize = 3;
const DEG: u32 = 3;

/// Random sparse polynomial in 3 variables of degree ≤ 3.
fn poly() -> impl Strategy<Value = Polynomial> {
    let basis = monomials_up_to(NVARS, DEG);
    let n = basis.len();
    prop::collection::vec(prop::option::of(-4.0f64..4.0), n).prop_map(move |coeffs| {
        let mut p = Polynomial::zero(NVARS);
        for (m, c) in basis.iter().zip(coeffs) {
            if let Some(c) = c {
                p.add_term(m.clone(), c);
            }
        }
        p
    })
}

fn point() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-2.0f64..2.0, NVARS)
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-8 * (1.0 + a.abs().max(b.abs()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn addition_commutes(p in poly(), q in poly()) {
        prop_assert_eq!(&p + &q, &q + &p);
    }

    #[test]
    fn multiplication_commutes(p in poly(), q in poly()) {
        let pq = &p * &q;
        let qp = &q * &p;
        prop_assert!((&pq - &qp).max_abs_coefficient() < 1e-10);
    }

    #[test]
    fn multiplication_associates(p in poly(), q in poly(), r in poly()) {
        let a = &(&p * &q) * &r;
        let b = &p * &(&q * &r);
        prop_assert!((&a - &b).max_abs_coefficient() < 1e-8);
    }

    #[test]
    fn distributivity(p in poly(), q in poly(), r in poly()) {
        let a = &p * &(&q + &r);
        let b = &(&p * &q) + &(&p * &r);
        prop_assert!((&a - &b).max_abs_coefficient() < 1e-9);
    }

    #[test]
    fn eval_is_homomorphism(p in poly(), q in poly(), x in point()) {
        prop_assert!(close((&p + &q).eval(&x), p.eval(&x) + q.eval(&x)));
        prop_assert!(close((&p * &q).eval(&x), p.eval(&x) * q.eval(&x)));
        prop_assert!(close((-&p).eval(&x), -p.eval(&x)));
    }

    #[test]
    fn derivative_is_linear(p in poly(), q in poly(), x in point()) {
        let d_sum = (&p + &q).partial_derivative(0);
        let sum_d = &p.partial_derivative(0) + &q.partial_derivative(0);
        prop_assert!(close(d_sum.eval(&x), sum_d.eval(&x)));
    }

    #[test]
    fn leibniz_product_rule(p in poly(), q in poly(), x in point()) {
        let lhs = (&p * &q).partial_derivative(1);
        let rhs = &(&p.partial_derivative(1) * &q) + &(&p * &q.partial_derivative(1));
        prop_assert!(close(lhs.eval(&x), rhs.eval(&x)));
    }

    #[test]
    fn lie_derivative_is_linear_in_field(p in poly(), x in point()) {
        let f: Vec<Polynomial> = (0..NVARS).map(|i| Polynomial::var(NVARS, i)).collect();
        let g: Vec<Polynomial> =
            (0..NVARS).map(|i| Polynomial::var(NVARS, (i + 1) % NVARS)).collect();
        let fg: Vec<Polynomial> = f.iter().zip(&g).map(|(a, b)| a + b).collect();
        let lhs = p.lie_derivative(&fg);
        let rhs = &p.lie_derivative(&f) + &p.lie_derivative(&g);
        prop_assert!(close(lhs.eval(&x), rhs.eval(&x)));
    }

    #[test]
    fn shift_matches_eval(p in poly(), x in point(), s in point()) {
        let shifted = p.shift(&s);
        let moved: Vec<f64> = x.iter().zip(&s).map(|(a, b)| a + b).collect();
        prop_assert!(close(shifted.eval(&x), p.eval(&moved)));
    }

    #[test]
    fn compose_identity_is_identity(p in poly(), x in point()) {
        let id: Vec<Polynomial> = (0..NVARS).map(|i| Polynomial::var(NVARS, i)).collect();
        let q = p.compose(&id);
        prop_assert!(close(q.eval(&x), p.eval(&x)));
    }

    #[test]
    fn scale_vars_matches_eval(p in poly(), x in point(), s in point()) {
        let scaled = p.scale_vars(&s);
        let sx: Vec<f64> = x.iter().zip(&s).map(|(a, b)| a * b).collect();
        prop_assert!(close(scaled.eval(&x), p.eval(&sx)));
    }

    #[test]
    fn degree_of_product_bounded(p in poly(), q in poly()) {
        let pq = &p * &q;
        if !p.is_zero() && !q.is_zero() && !pq.is_zero() {
            prop_assert!(pq.degree() <= p.degree() + q.degree());
        }
    }
}
