//! `cppll` — command-line inevitability verifier.
//!
//! ```text
//! cppll verify <system.json>     run the inevitability pipeline on a spec
//! cppll pll <3|4> [degree]       run the built-in CP PLL benchmarks
//! cppll schema                   print an annotated example spec
//! ```
//!
//! Resilience flags (both `verify` and `pll`):
//!
//! ```text
//! --retries <n>            retries per solve on transient failures (default 2)
//! --solve-timeout <secs>   wall-clock budget per solve attempt
//! --deadline <secs>        wall-clock budget for the whole pipeline
//! --threads <n>            SDP solver worker threads (0 = auto, default 0)
//! ```
//!
//! Durability flags (both `verify` and `pll`):
//!
//! ```text
//! --run-id <id>            journal completed stages under target/runs/<id>
//! --resume <id>            resume a journaled run, replaying finished stages
//! --runs-dir <dir>         base directory for run journals (default target/runs)
//! --inject-crash <stage>:<n>  exit(3) at the n-th solve of a stage (testing)
//! ```
//!
//! Reduction flags (both `verify` and `pll`):
//!
//! ```text
//! --no-reduce              solve the unreduced SDPs (skip Newton-polytope
//!                          basis pruning and sign-symmetry block splitting)
//! ```
//!
//! Tracing flags (both `verify` and `pll`):
//!
//! ```text
//! --trace-level <level>    off | stage | solve | iter (default off; tracing
//!                          never changes results — digests are identical at
//!                          every level)
//! --trace-out <dir>        write trace.jsonl, trace.chrome.json, and
//!                          metrics.prom under <dir> (implies
//!                          --trace-level solve unless one is given)
//! ```

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use cppll_cli::{run_inevitability_traced, SystemSpec};
use cppll_pll::{PllModelBuilder, PllOrder};
use cppll_verify::{
    CheckpointConfig, CrashMode, EventKind, FaultInjector, FaultPlan, InevitabilityVerifier,
    PipelineOptions, ReductionOptions, ResilienceConfig, TraceLevel, Tracer, VerificationReport,
};

const EXAMPLE_SPEC: &str = r#"{
  "states": 2,
  "modes": [
    {"name": "right", "flow": ["-1 x0 + 1 x1", "-1 x0 - 1 x1"], "flow_set": ["x0"]},
    {"name": "left",  "flow": ["-1 x0 + 0.5 x1", "-0.5 x0 - 1 x1"], "flow_set": ["-1 x0"]}
  ],
  "jumps": [
    {"from": 0, "to": 1, "guard_eq": ["x0"]},
    {"from": 1, "to": 0, "guard_eq": ["x0"]}
  ],
  "params": {"lo": [], "hi": []},
  "boundary": ["3 - 1 x0", "3 + 1 x0", "3 - 1 x1", "3 + 1 x1"],
  "initial_radii": [2.0, 2.0],
  "degree": 2
}"#;

fn print_report(report: &VerificationReport) {
    println!("verdict: {:?}", report.verdict);
    println!("attractive invariant level c* = {:.6}", report.levels.level);
    println!(
        "advection: {} iterations, included after {:?}",
        report.advection_iterations(),
        report.included_after()
    );
    println!("escape certificates: {}", report.escape_certificates.len());
    println!("solves: {}", report.solve_stats);
    for f in &report.failures {
        println!("failure: {f}");
        for a in &f.attempts {
            println!("  {}", a.log_line());
        }
    }
    println!("timings:");
    for t in &report.timings {
        println!("  {:<26} {:>9.2}s", t.name, t.seconds);
    }
    if report.reduction.grams > 0 {
        println!("reduction: {}", report.reduction);
    }
    let tm = &report.solve_timings;
    if tm.total > 0.0 {
        println!("solver stages ({} threads):", cppll_par::current_threads());
        for line in tm.report_lines() {
            println!("  {line}");
        }
    }
    println!("result digest: {}", report.result_digest());
    if let Some(run_id) = &report.resume.run_id {
        println!(
            "run {run_id}: {} stage(s) replayed from journal, {} computed fresh, \
             {} warm-started solve(s)",
            report.resume.stages_replayed,
            report.resume.stages_fresh,
            report.resume.warm_started_solves,
        );
    }
}

/// Tracing-related command-line options.
#[derive(Default)]
struct TraceFlags {
    out: Option<String>,
    level: Option<TraceLevel>,
}

impl TraceFlags {
    /// The effective recording level: an explicit `--trace-level` wins;
    /// `--trace-out` alone defaults to `solve`.
    fn effective_level(&self) -> TraceLevel {
        match self.level {
            Some(l) => l,
            None if self.out.is_some() => TraceLevel::Solve,
            None => TraceLevel::Off,
        }
    }

    /// The tracer these flags describe, `None` when tracing is off.
    fn tracer(&self) -> Option<Tracer> {
        match self.effective_level() {
            TraceLevel::Off => None,
            level => Some(Tracer::new(level)),
        }
    }
}

/// Prints the `telemetry:` report block and writes the trace files when
/// `--trace-out` was given.
fn emit_telemetry(tracer: Option<&Tracer>, out: Option<&str>) {
    let Some(t) = tracer else { return };
    let events = t.events();
    let spans = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Begin { .. }))
        .count();
    let iterations = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Instant { .. }) && e.name() == "iteration")
        .count();
    println!("telemetry:");
    println!("  level: {}", t.level().as_str());
    println!("  events: {} ({} spans, {} solver iterations)", events.len(), spans, iterations);
    for (name, total) in t.counter_totals() {
        println!("  {name}: {total}");
    }
    if let Some(dir) = out {
        match t.write_all(std::path::Path::new(dir)) {
            Ok(paths) => {
                for p in paths {
                    println!("  wrote {}", p.display());
                }
            }
            Err(e) => eprintln!("cannot write trace files under {dir}: {e}"),
        }
    }
}

/// Durability-related command-line options.
#[derive(Default)]
struct DurabilityFlags {
    run_id: Option<String>,
    resume: Option<String>,
    runs_dir: Option<String>,
    inject_crash: Option<(String, usize)>,
}

impl DurabilityFlags {
    /// The checkpoint configuration these flags describe (if any).
    fn checkpoint(&self) -> Result<Option<CheckpointConfig>, String> {
        if self.run_id.is_some() && self.resume.is_some() {
            return Err("--run-id and --resume are mutually exclusive".into());
        }
        let config = match (&self.run_id, &self.resume) {
            (Some(id), None) => Some(CheckpointConfig::new(id.clone())),
            (None, Some(id)) => Some(CheckpointConfig::new(id.clone()).resuming()),
            (None, None) => None,
            (Some(_), Some(_)) => unreachable!(),
        };
        Ok(config.map(|c| match &self.runs_dir {
            Some(dir) => c.with_dir(dir.clone()),
            None => c,
        }))
    }

    /// Installs the crash injector on `config` when `--inject-crash` was
    /// given. The process exits with code 3 at the requested solve, leaving
    /// the journal behind for `--resume`.
    fn arm(&self, config: &mut ResilienceConfig) {
        if let Some((stage, nth)) = &self.inject_crash {
            let plan =
                FaultPlan::default().crash_at_stage_solve(stage.clone(), *nth, CrashMode::Exit(3));
            config.fault = Some(Arc::new(FaultInjector::new(plan)));
        }
    }
}

/// Parsed command line: positionals plus every flag group.
struct ParsedArgs {
    positional: Vec<String>,
    resilience: ResilienceConfig,
    durability: DurabilityFlags,
    reduction: ReductionOptions,
    trace: TraceFlags,
}

/// Extracts every `--flag value` pair from `args`, returning the remaining
/// positional arguments and the flag groups.
fn parse_flags(args: &[String]) -> Result<ParsedArgs, String> {
    fn seconds(flag: &str, v: &str) -> Result<Duration, String> {
        let secs: f64 = v
            .parse()
            .map_err(|_| format!("{flag}: not a number of seconds: {v}"))?;
        if !secs.is_finite() || secs < 0.0 {
            return Err(format!(
                "{flag}: must be a non-negative number of seconds: {v}"
            ));
        }
        Ok(Duration::from_secs_f64(secs))
    }
    let mut config = ResilienceConfig::default();
    let mut durability = DurabilityFlags::default();
    let mut reduction = ReductionOptions::default();
    let mut trace = TraceFlags::default();
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value_of = |flag: &str| {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--retries" => {
                let v = value_of("--retries")?;
                config.retries = v
                    .parse()
                    .map_err(|_| format!("--retries: not a count: {v}"))?;
            }
            "--solve-timeout" => {
                config.solve_timeout =
                    Some(seconds("--solve-timeout", value_of("--solve-timeout")?)?);
            }
            "--deadline" => {
                config.deadline = Some(seconds("--deadline", value_of("--deadline")?)?);
            }
            "--threads" => {
                let v = value_of("--threads")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("--threads: not a count: {v}"))?;
                cppll_par::set_threads(n);
            }
            "--run-id" => durability.run_id = Some(value_of("--run-id")?.to_string()),
            "--resume" => durability.resume = Some(value_of("--resume")?.to_string()),
            "--runs-dir" => durability.runs_dir = Some(value_of("--runs-dir")?.to_string()),
            "--inject-crash" => {
                let v = value_of("--inject-crash")?;
                let (stage, nth) = v
                    .rsplit_once(':')
                    .ok_or_else(|| format!("--inject-crash: expected <stage>:<n>, got {v}"))?;
                let nth: usize = nth
                    .parse()
                    .map_err(|_| format!("--inject-crash: not a solve index: {nth}"))?;
                durability.inject_crash = Some((stage.to_string(), nth));
            }
            "--no-reduce" => reduction = ReductionOptions::none(),
            "--trace-out" => trace.out = Some(value_of("--trace-out")?.to_string()),
            "--trace-level" => {
                let v = value_of("--trace-level")?;
                trace.level = Some(TraceLevel::parse(v).ok_or_else(|| {
                    format!("--trace-level: expected off|stage|solve|iter, got {v}")
                })?);
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown flag: {other}"));
            }
            other => positional.push(other.to_string()),
        }
    }
    Ok(ParsedArgs {
        positional,
        resilience: config,
        durability,
        reduction,
        trace,
    })
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let ParsedArgs {
        positional: args,
        mut resilience,
        durability,
        reduction,
        trace,
    } = match parse_flags(&raw) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let checkpoint = match durability.checkpoint() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    durability.arm(&mut resilience);
    let tracer = trace.tracer();
    match args.first().map(String::as_str) {
        Some("schema") => {
            println!("{EXAMPLE_SPEC}");
            ExitCode::SUCCESS
        }
        Some("verify") => {
            let Some(path) = args.get(1) else {
                eprintln!("usage: cppll verify <system.json>");
                return ExitCode::FAILURE;
            };
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let spec: SystemSpec = match SystemSpec::from_json_str(&text) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("cannot parse {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match run_inevitability_traced(&spec, resilience, checkpoint, reduction, tracer.clone())
            {
                Ok(report) => {
                    print_report(&report);
                    emit_telemetry(tracer.as_ref(), trace.out.as_deref());
                    if report.verdict.is_verified() {
                        ExitCode::SUCCESS
                    } else {
                        ExitCode::from(2)
                    }
                }
                Err(e) => {
                    eprintln!("{e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("pll") => {
            let order = match args.get(1).map(String::as_str) {
                Some("3") => PllOrder::Third,
                Some("4") => PllOrder::Fourth,
                _ => {
                    eprintln!("usage: cppll pll <3|4> [degree]");
                    return ExitCode::FAILURE;
                }
            };
            let degree: u32 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4);
            let model = PllModelBuilder::new(order).build();
            println!("CP PLL order {order:?}, certificate degree {degree}");
            println!("scaled coefficients: {}", model.coeffs());
            let verifier = InevitabilityVerifier::for_pll(&model);
            let mut opt = PipelineOptions::degree(degree);
            opt.resilience = resilience;
            opt.checkpoint = checkpoint;
            opt.reduction = reduction;
            opt.trace = tracer.clone();
            match verifier.verify(&opt) {
                Ok(report) => {
                    print_report(&report);
                    emit_telemetry(tracer.as_ref(), trace.out.as_deref());
                    if report.verdict.is_verified() {
                        ExitCode::SUCCESS
                    } else {
                        ExitCode::from(2)
                    }
                }
                Err(e) => {
                    eprintln!("{e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => {
            eprintln!(
                "cppll — inevitability verifier for polynomial hybrid systems\n\
                 \n\
                 usage:\n\
                 \x20 cppll verify <system.json>   verify a JSON system spec\n\
                 \x20 cppll pll <3|4> [degree]     run the CP PLL benchmarks\n\
                 \x20 cppll schema                 print an example spec\n\
                 \n\
                 resilience flags (verify, pll):\n\
                 \x20 --retries <n>            retries per solve on transient failures (default 2)\n\
                 \x20 --solve-timeout <secs>   wall-clock budget per solve attempt\n\
                 \x20 --deadline <secs>        wall-clock budget for the whole pipeline\n\
                 \x20 --threads <n>            SDP solver worker threads (0 = auto)\n\
                 \n\
                 durability flags (verify, pll):\n\
                 \x20 --run-id <id>            journal completed stages under target/runs/<id>\n\
                 \x20 --resume <id>            resume a journaled run, replaying finished stages\n\
                 \x20 --runs-dir <dir>         base directory for run journals (default target/runs)\n\
                 \x20 --inject-crash <stage>:<n>  exit(3) at the n-th solve of a stage (testing)\n\
                 \n\
                 reduction flags (verify, pll):\n\
                 \x20 --no-reduce              solve the unreduced SDPs (skip basis pruning\n\
                 \x20                          and symmetry block splitting)\n\
                 \n\
                 tracing flags (verify, pll):\n\
                 \x20 --trace-level <level>    off | stage | solve | iter (default off)\n\
                 \x20 --trace-out <dir>        write trace.jsonl, trace.chrome.json and\n\
                 \x20                          metrics.prom under <dir> (implies solve level)"
            );
            ExitCode::FAILURE
        }
    }
}
