//! `cppll` — command-line inevitability verifier.
//!
//! ```text
//! cppll verify <system.json>     run the inevitability pipeline on a spec
//! cppll pll <3|4> [degree]       run the built-in CP PLL benchmarks
//! cppll schema                   print an annotated example spec
//! ```
//!
//! Resilience flags (both `verify` and `pll`):
//!
//! ```text
//! --retries <n>            retries per solve on transient failures (default 2)
//! --solve-timeout <secs>   wall-clock budget per solve attempt
//! --deadline <secs>        wall-clock budget for the whole pipeline
//! --threads <n>            SDP solver worker threads (0 = auto, default 0)
//! --kkt-mode <mode>        KKT LDLT kernel: auto | schur | augmented (default auto)
//! ```
//!
//! Durability flags (both `verify` and `pll`):
//!
//! ```text
//! --run-id <id>            journal completed stages under target/runs/<id>
//! --resume <id>            resume a journaled run, replaying finished stages
//! --runs-dir <dir>         base directory for run journals (default target/runs)
//! --durability <mode>      fast | safe — safe fsyncs every journal append
//! --inject-crash <stage>:<n>  exit(3) at the n-th solve of a stage (testing)
//! --inject-stall <stage>:<n>  hang forever at the n-th solve of a stage (testing)
//! ```
//!
//! Validation flags (both `verify` and `pll`):
//!
//! ```text
//! --validate <trials>      after verifying, Monte-Carlo check the certified
//!                          claims on <trials> simulated trajectories; exit 2
//!                          when a certified claim is violated
//! ```
//!
//! Isolation flags (both `verify` and `pll`):
//!
//! ```text
//! --isolate                re-run this command in a supervised worker process
//!                          with heartbeat, watchdog, and kill-and-resume
//! --watchdog <secs>        kill the worker when its stdout is silent this long
//! --stall-timeout <secs>   kill the worker when its journal stops advancing
//! --heartbeat <ms>         worker heartbeat interval (default 500)
//! --max-rss <mb>           kill the worker when its RSS exceeds this ceiling
//! --max-restarts <n>       restarts before giving up (default 3)
//! --chaos-kill-after <n>   chaos test: kill the worker after n heartbeats,
//!                          doubling the allowance after every kill
//! --chaos-corrupt-tail <bytes>  chaos test: chop bytes off the journal tail
//!                          after every chaos kill
//! ```
//!
//! Reduction flags (both `verify` and `pll`):
//!
//! ```text
//! --no-reduce              solve the unreduced SDPs (skip Newton-polytope
//!                          basis pruning and sign-symmetry block splitting)
//! ```
//!
//! Tracing flags (both `verify` and `pll`):
//!
//! ```text
//! --trace-level <level>    off | stage | solve | iter (default off; tracing
//!                          never changes results — digests are identical at
//!                          every level)
//! --trace-out <dir>        write trace.jsonl, trace.chrome.json, and
//!                          metrics.prom under <dir> (implies
//!                          --trace-level solve unless one is given)
//! ```

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use cppll_cli::{run_inevitability_validated, SystemSpec};
use cppll_harness::{run_supervised, ChaosPlan, HarnessOptions, HeartbeatEmitter, WorkerSpec};
use cppll_pll::{PllModelBuilder, PllOrder};
use cppll_verify::{
    CheckpointConfig, CrashMode, Durability, EventKind, FaultInjector, FaultPlan,
    InevitabilityVerifier, PipelineOptions, ReductionOptions, ResilienceConfig, TraceLevel,
    Tracer, ValidationReport, VerificationReport,
};

/// Seed of the `--validate` Monte-Carlo sampler: fixed, so validation runs
/// are reproducible.
const VALIDATE_SEED: u64 = 42;

const EXAMPLE_SPEC: &str = r#"{
  "states": 2,
  "modes": [
    {"name": "right", "flow": ["-1 x0 + 1 x1", "-1 x0 - 1 x1"], "flow_set": ["x0"]},
    {"name": "left",  "flow": ["-1 x0 + 0.5 x1", "-0.5 x0 - 1 x1"], "flow_set": ["-1 x0"]}
  ],
  "jumps": [
    {"from": 0, "to": 1, "guard_eq": ["x0"]},
    {"from": 1, "to": 0, "guard_eq": ["x0"]}
  ],
  "params": {"lo": [], "hi": []},
  "boundary": ["3 - 1 x0", "3 + 1 x0", "3 - 1 x1", "3 + 1 x1"],
  "initial_radii": [2.0, 2.0],
  "degree": 2
}"#;

fn print_report(report: &VerificationReport) {
    println!("verdict: {:?}", report.verdict);
    println!("attractive invariant level c* = {:.6}", report.levels.level);
    println!(
        "advection: {} iterations, included after {:?}",
        report.advection_iterations(),
        report.included_after()
    );
    println!("escape certificates: {}", report.escape_certificates.len());
    println!("solves: {}", report.solve_stats);
    for f in &report.failures {
        println!("failure: {f}");
        for a in &f.attempts {
            println!("  {}", a.log_line());
        }
    }
    println!("timings:");
    for t in &report.timings {
        println!("  {:<26} {:>9.2}s", t.name, t.seconds);
    }
    if report.reduction.grams > 0 {
        println!("reduction: {}", report.reduction);
    }
    let tm = &report.solve_timings;
    if tm.total > 0.0 {
        println!("solver stages ({} threads):", cppll_par::current_threads());
        for line in tm.report_lines() {
            println!("  {line}");
        }
    }
    println!("result digest: {}", report.result_digest());
    if let Some(run_id) = &report.resume.run_id {
        println!(
            "run {run_id}: {} stage(s) replayed from journal, {} computed fresh, \
             {} warm-started solve(s)",
            report.resume.stages_replayed,
            report.resume.stages_fresh,
            report.resume.warm_started_solves,
        );
        if report.resume.journal_recovered_records > 0 {
            println!(
                "  journal self-healed: {} torn record(s) dropped on open",
                report.resume.journal_recovered_records
            );
        }
    }
}

/// Prints the Monte-Carlo validation block.
fn print_validation(v: &ValidationReport) {
    println!("validation ({} trials, seed {VALIDATE_SEED}):", v.trials);
    println!("  certificate monotone:   {}/{}", v.monotone, v.trials);
    println!("  reached invariant:      {}/{}", v.reached_ai, v.trials);
    println!("  phase-locked:           {}/{}", v.locked, v.trials);
    println!("  worst increase:         {:.3e}", v.worst_increase);
    println!(
        "  verdict: {}",
        if v.all_passed() {
            "all certified claims held"
        } else {
            "CERTIFIED CLAIM VIOLATED"
        }
    );
}

/// Exit code for a completed run: `0` only when the pipeline verified the
/// claim *and* any requested Monte-Carlo validation upheld it; `2` when
/// the verdict is not-verified or a certified claim was violated.
fn verdict_exit(report: &VerificationReport, validation: Option<&ValidationReport>) -> ExitCode {
    let validated = validation.is_none_or(ValidationReport::all_passed);
    if report.verdict.is_verified() && validated {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}

/// Tracing-related command-line options.
#[derive(Default)]
struct TraceFlags {
    out: Option<String>,
    level: Option<TraceLevel>,
}

impl TraceFlags {
    /// The effective recording level: an explicit `--trace-level` wins;
    /// `--trace-out` alone defaults to `solve`.
    fn effective_level(&self) -> TraceLevel {
        match self.level {
            Some(l) => l,
            None if self.out.is_some() => TraceLevel::Solve,
            None => TraceLevel::Off,
        }
    }

    /// The tracer these flags describe, `None` when tracing is off.
    fn tracer(&self) -> Option<Tracer> {
        match self.effective_level() {
            TraceLevel::Off => None,
            level => Some(Tracer::new(level)),
        }
    }
}

/// Prints the `telemetry:` report block and writes the trace files when
/// `--trace-out` was given.
fn emit_telemetry(tracer: Option<&Tracer>, out: Option<&str>) {
    let Some(t) = tracer else { return };
    let events = t.events();
    let spans = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Begin { .. }))
        .count();
    let iterations = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Instant { .. }) && e.name() == "iteration")
        .count();
    println!("telemetry:");
    println!("  level: {}", t.level().as_str());
    println!("  events: {} ({} spans, {} solver iterations)", events.len(), spans, iterations);
    for (name, total) in t.counter_totals() {
        println!("  {name}: {total}");
    }
    if let Some(dir) = out {
        match t.write_all(std::path::Path::new(dir)) {
            Ok(paths) => {
                for p in paths {
                    println!("  wrote {}", p.display());
                }
            }
            Err(e) => eprintln!("cannot write trace files under {dir}: {e}"),
        }
    }
}

/// Durability-related command-line options.
#[derive(Default)]
struct DurabilityFlags {
    run_id: Option<String>,
    resume: Option<String>,
    runs_dir: Option<String>,
    durability: Option<Durability>,
    inject_crash: Option<(String, usize)>,
    inject_stall: Option<(String, usize)>,
}

impl DurabilityFlags {
    /// The checkpoint configuration these flags describe (if any).
    fn checkpoint(&self) -> Result<Option<CheckpointConfig>, String> {
        if self.run_id.is_some() && self.resume.is_some() {
            return Err("--run-id and --resume are mutually exclusive".into());
        }
        let config = match (&self.run_id, &self.resume) {
            (Some(id), None) => Some(CheckpointConfig::new(id.clone())),
            (None, Some(id)) => Some(CheckpointConfig::new(id.clone()).resuming()),
            (None, None) => None,
            (Some(_), Some(_)) => unreachable!(),
        };
        Ok(config.map(|c| {
            let c = match &self.runs_dir {
                Some(dir) => c.with_dir(dir.clone()),
                None => c,
            };
            match self.durability {
                Some(d) => c.with_durability(d),
                None => c,
            }
        }))
    }

    /// Installs the fault injector on `config` when `--inject-crash` or
    /// `--inject-stall` was given. A crash exits with code 3 at the
    /// requested solve; a stall hangs forever there (only the harness stall
    /// watchdog can recover it). Both leave the journal behind for
    /// `--resume`.
    fn arm(&self, config: &mut ResilienceConfig) {
        let mut plan = FaultPlan::default();
        let mut armed = false;
        if let Some((stage, nth)) = &self.inject_crash {
            plan = plan.crash_at_stage_solve(stage.clone(), *nth, CrashMode::Exit(3));
            armed = true;
        }
        if let Some((stage, nth)) = &self.inject_stall {
            plan = plan.crash_at_stage_solve(stage.clone(), *nth, CrashMode::Hang);
            armed = true;
        }
        if armed {
            config.fault = Some(Arc::new(FaultInjector::new(plan)));
        }
    }
}

/// Isolation / supervision command-line options.
#[derive(Default)]
struct HarnessFlags {
    isolate: bool,
    watchdog: Option<Duration>,
    stall_timeout: Option<Duration>,
    heartbeat_ms: Option<u64>,
    max_rss_mb: Option<u64>,
    max_restarts: Option<usize>,
    chaos_kill_after: Option<u64>,
    chaos_corrupt_tail: Option<u64>,
    /// Hidden worker-side flag: emit heartbeats at this interval. Set by
    /// the supervisor on the worker command line, never by hand.
    worker_heartbeat_ms: Option<u64>,
}

/// Parsed command line: positionals plus every flag group.
struct ParsedArgs {
    positional: Vec<String>,
    resilience: ResilienceConfig,
    durability: DurabilityFlags,
    reduction: ReductionOptions,
    trace: TraceFlags,
    harness: HarnessFlags,
    validate: Option<usize>,
}

/// Extracts every `--flag value` pair from `args`, returning the remaining
/// positional arguments and the flag groups.
fn parse_flags(args: &[String]) -> Result<ParsedArgs, String> {
    fn seconds(flag: &str, v: &str) -> Result<Duration, String> {
        let secs: f64 = v
            .parse()
            .map_err(|_| format!("{flag}: not a number of seconds: {v}"))?;
        if !secs.is_finite() || secs < 0.0 {
            return Err(format!(
                "{flag}: must be a non-negative number of seconds: {v}"
            ));
        }
        Ok(Duration::from_secs_f64(secs))
    }
    fn stage_solve(flag: &str, v: &str) -> Result<(String, usize), String> {
        let (stage, nth) = v
            .rsplit_once(':')
            .ok_or_else(|| format!("{flag}: expected <stage>:<n>, got {v}"))?;
        let nth: usize = nth
            .parse()
            .map_err(|_| format!("{flag}: not a solve index: {nth}"))?;
        Ok((stage.to_string(), nth))
    }
    fn count<T: std::str::FromStr>(flag: &str, v: &str) -> Result<T, String> {
        v.parse().map_err(|_| format!("{flag}: not a count: {v}"))
    }
    let mut config = ResilienceConfig::default();
    let mut durability = DurabilityFlags::default();
    let mut reduction = ReductionOptions::default();
    let mut trace = TraceFlags::default();
    let mut harness = HarnessFlags::default();
    let mut validate = None;
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value_of = |flag: &str| {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--retries" => {
                let v = value_of("--retries")?;
                config.retries = v
                    .parse()
                    .map_err(|_| format!("--retries: not a count: {v}"))?;
            }
            "--solve-timeout" => {
                config.solve_timeout =
                    Some(seconds("--solve-timeout", value_of("--solve-timeout")?)?);
            }
            "--deadline" => {
                config.deadline = Some(seconds("--deadline", value_of("--deadline")?)?);
            }
            "--threads" => {
                let v = value_of("--threads")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("--threads: not a count: {v}"))?;
                cppll_par::set_threads(n);
            }
            "--kkt-mode" => {
                let v = value_of("--kkt-mode")?;
                let mode = cppll_sdp::KktMode::parse(v).ok_or_else(|| {
                    format!("--kkt-mode: expected auto|schur|augmented, got {v}")
                })?;
                cppll_sdp::set_default_kkt_mode(mode);
            }
            "--run-id" => durability.run_id = Some(value_of("--run-id")?.to_string()),
            "--resume" => durability.resume = Some(value_of("--resume")?.to_string()),
            "--runs-dir" => durability.runs_dir = Some(value_of("--runs-dir")?.to_string()),
            "--durability" => {
                let v = value_of("--durability")?;
                durability.durability = Some(Durability::parse(v).ok_or_else(|| {
                    format!("--durability: expected fast|safe, got {v}")
                })?);
            }
            "--inject-crash" => {
                durability.inject_crash =
                    Some(stage_solve("--inject-crash", value_of("--inject-crash")?)?);
            }
            "--inject-stall" => {
                durability.inject_stall =
                    Some(stage_solve("--inject-stall", value_of("--inject-stall")?)?);
            }
            "--validate" => {
                validate = Some(count("--validate", value_of("--validate")?)?);
            }
            "--isolate" => harness.isolate = true,
            "--watchdog" => {
                harness.watchdog = Some(seconds("--watchdog", value_of("--watchdog")?)?);
            }
            "--stall-timeout" => {
                harness.stall_timeout =
                    Some(seconds("--stall-timeout", value_of("--stall-timeout")?)?);
            }
            "--heartbeat" => {
                harness.heartbeat_ms = Some(count("--heartbeat", value_of("--heartbeat")?)?);
            }
            "--max-rss" => {
                harness.max_rss_mb = Some(count("--max-rss", value_of("--max-rss")?)?);
            }
            "--max-restarts" => {
                harness.max_restarts =
                    Some(count("--max-restarts", value_of("--max-restarts")?)?);
            }
            "--chaos-kill-after" => {
                harness.chaos_kill_after =
                    Some(count("--chaos-kill-after", value_of("--chaos-kill-after")?)?);
            }
            "--chaos-corrupt-tail" => {
                harness.chaos_corrupt_tail =
                    Some(count("--chaos-corrupt-tail", value_of("--chaos-corrupt-tail")?)?);
            }
            "--worker-heartbeat" => {
                harness.worker_heartbeat_ms =
                    Some(count("--worker-heartbeat", value_of("--worker-heartbeat")?)?);
            }
            "--no-reduce" => reduction = ReductionOptions::none(),
            "--trace-out" => trace.out = Some(value_of("--trace-out")?.to_string()),
            "--trace-level" => {
                let v = value_of("--trace-level")?;
                trace.level = Some(TraceLevel::parse(v).ok_or_else(|| {
                    format!("--trace-level: expected off|stage|solve|iter, got {v}")
                })?);
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown flag: {other}"));
            }
            other => positional.push(other.to_string()),
        }
    }
    Ok(ParsedArgs {
        positional,
        resilience: config,
        durability,
        reduction,
        trace,
        harness,
        validate,
    })
}

/// Flags that belong to the supervisor only and must be stripped from the
/// worker's command line. `true` means the flag takes a value.
const SUPERVISOR_FLAGS: &[(&str, bool)] = &[
    ("--isolate", false),
    ("--watchdog", true),
    ("--stall-timeout", true),
    ("--heartbeat", true),
    ("--max-rss", true),
    ("--max-restarts", true),
    ("--chaos-kill-after", true),
    ("--chaos-corrupt-tail", true),
];

/// Flags stripped from restart (resume) command lines: an injected fault
/// simulates a one-time environmental failure — replaying it on every
/// resume would turn a chaos test into a livelock.
const ONE_SHOT_FLAGS: &[(&str, bool)] = &[("--inject-crash", true), ("--inject-stall", true)];

/// Removes `drop` flags (and their values) from an argument list.
fn strip_flags(args: &[String], drop: &[(&str, bool)]) -> Vec<String> {
    let mut out = Vec::with_capacity(args.len());
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match drop.iter().find(|(name, _)| name == arg) {
            Some((_, true)) => {
                let _ = it.next();
            }
            Some((_, false)) => {}
            None => out.push(arg.clone()),
        }
    }
    out
}

/// Runs this same command line in a supervised worker process
/// (`--isolate`): heartbeat liveness watchdog, journal-mtime stall
/// detection, RSS ceiling, and kill-and-resume through the run journal.
fn supervise(raw: &[String], parsed: &ParsedArgs) -> ExitCode {
    let program = match std::env::current_exe() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("--isolate: cannot locate own executable: {e}");
            return ExitCode::FAILURE;
        }
    };
    let h = &parsed.harness;
    let d = &parsed.durability;

    // The worker needs a journal for resume to mean anything; synthesize a
    // run id when the user did not name one.
    let mut worker_args = strip_flags(raw, SUPERVISOR_FLAGS);
    let run_id = match (&d.run_id, &d.resume) {
        (Some(id), _) | (_, Some(id)) => id.clone(),
        (None, None) => {
            let t = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_millis())
                .unwrap_or(0);
            let id = format!("isolate-{}-{t}", std::process::id());
            worker_args.push("--run-id".to_string());
            worker_args.push(id.clone());
            id
        }
    };
    let heartbeat_ms = h.heartbeat_ms.unwrap_or(500);
    worker_args.push("--worker-heartbeat".to_string());
    worker_args.push(heartbeat_ms.to_string());

    // Restarts resume the journal and drop one-shot fault injections.
    let mut resume_args = Vec::with_capacity(worker_args.len());
    let mut it = strip_flags(&worker_args, ONE_SHOT_FLAGS).into_iter();
    while let Some(arg) = it.next() {
        if arg == "--run-id" {
            resume_args.push("--resume".to_string());
            if let Some(v) = it.next() {
                resume_args.push(v);
            }
        } else {
            resume_args.push(arg);
        }
    }

    let runs_dir = d.runs_dir.clone().unwrap_or_else(|| "target/runs".to_string());
    let journal = PathBuf::from(&runs_dir).join(&run_id).join("journal.jsonl");

    let spec = WorkerSpec {
        program,
        initial_args: worker_args,
        resume_args,
        envs: Vec::new(),
    };
    let tracer = parsed.trace.tracer();
    let opt = HarnessOptions {
        watchdog: h.watchdog.unwrap_or(Duration::from_secs(30)),
        stall_timeout: h.stall_timeout,
        progress_file: Some(journal.clone()),
        max_rss_kb: h.max_rss_mb.map(|mb| mb.saturating_mul(1024)),
        max_restarts: h.max_restarts.unwrap_or(3),
        chaos: h.chaos_kill_after.map(|n| ChaosPlan {
            kill_after_heartbeats: n,
            growth: 2,
            corrupt_tail: h.chaos_corrupt_tail.map(|bytes| (journal.clone(), bytes)),
        }),
        tracer: tracer.clone(),
        forward_output: true,
    };
    match run_supervised(&spec, &opt) {
        Ok(report) => {
            let reasons: Vec<&str> = report.kills.iter().map(|k| k.name()).collect();
            println!(
                "harness: worker exit {} after {} restart(s), {} kill(s) [{}], \
                 {} heartbeat(s), run {run_id}",
                report.exit_code,
                report.restarts,
                report.kills.len(),
                reasons.join(", "),
                report.heartbeats,
            );
            emit_telemetry(tracer.as_ref(), None);
            ExitCode::from(report.exit_code.clamp(0, 255) as u8)
        }
        Err(e) => {
            eprintln!("harness: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match parse_flags(&raw) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    if parsed.harness.isolate {
        return supervise(&raw, &parsed);
    }
    // Supervised worker: heartbeat for the life of the process.
    let _heartbeat = parsed
        .harness
        .worker_heartbeat_ms
        .map(|ms| HeartbeatEmitter::start(Duration::from_millis(ms.max(1))));
    let ParsedArgs {
        positional: args,
        mut resilience,
        durability,
        reduction,
        trace,
        validate,
        ..
    } = parsed;
    let checkpoint = match durability.checkpoint() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    durability.arm(&mut resilience);
    let tracer = trace.tracer();
    match args.first().map(String::as_str) {
        Some("schema") => {
            println!("{EXAMPLE_SPEC}");
            ExitCode::SUCCESS
        }
        Some("verify") => {
            let Some(path) = args.get(1) else {
                eprintln!("usage: cppll verify <system.json>");
                return ExitCode::FAILURE;
            };
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let spec: SystemSpec = match SystemSpec::from_json_str(&text) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("cannot parse {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match run_inevitability_validated(
                &spec,
                resilience,
                checkpoint,
                reduction,
                tracer.clone(),
                validate.map(|trials| (trials, VALIDATE_SEED)),
            ) {
                Ok((report, validation)) => {
                    print_report(&report);
                    if let Some(v) = &validation {
                        print_validation(v);
                    }
                    emit_telemetry(tracer.as_ref(), trace.out.as_deref());
                    verdict_exit(&report, validation.as_ref())
                }
                Err(e) => {
                    eprintln!("{e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("pll") => {
            let order = match args.get(1).map(String::as_str) {
                Some("3") => PllOrder::Third,
                Some("4") => PllOrder::Fourth,
                _ => {
                    eprintln!("usage: cppll pll <3|4> [degree]");
                    return ExitCode::FAILURE;
                }
            };
            let degree: u32 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4);
            let model = PllModelBuilder::new(order).build();
            println!("CP PLL order {order:?}, certificate degree {degree}");
            println!("scaled coefficients: {}", model.coeffs());
            let verifier = InevitabilityVerifier::for_pll(&model);
            let mut opt = PipelineOptions::degree(degree);
            opt.resilience = resilience;
            opt.checkpoint = checkpoint;
            opt.reduction = reduction;
            opt.trace = tracer.clone();
            match verifier.verify(&opt) {
                Ok(report) => {
                    print_report(&report);
                    let validation = validate
                        .and_then(|trials| verifier.validate(&report, trials, VALIDATE_SEED));
                    if let Some(v) = &validation {
                        print_validation(v);
                    }
                    emit_telemetry(tracer.as_ref(), trace.out.as_deref());
                    verdict_exit(&report, validation.as_ref())
                }
                Err(e) => {
                    eprintln!("{e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => {
            eprintln!(
                "cppll — inevitability verifier for polynomial hybrid systems\n\
                 \n\
                 usage:\n\
                 \x20 cppll verify <system.json>   verify a JSON system spec\n\
                 \x20 cppll pll <3|4> [degree]     run the CP PLL benchmarks\n\
                 \x20 cppll schema                 print an example spec\n\
                 \n\
                 resilience flags (verify, pll):\n\
                 \x20 --retries <n>            retries per solve on transient failures (default 2)\n\
                 \x20 --solve-timeout <secs>   wall-clock budget per solve attempt\n\
                 \x20 --deadline <secs>        wall-clock budget for the whole pipeline\n\
                 \x20 --threads <n>            SDP solver worker threads (0 = auto)\n\
                 \x20 --kkt-mode <mode>        KKT LDLT kernel: auto | schur | augmented\n\
                 \x20                          (bit-identical results; wall-clock only)\n\
                 \n\
                 durability flags (verify, pll):\n\
                 \x20 --run-id <id>            journal completed stages under target/runs/<id>\n\
                 \x20 --resume <id>            resume a journaled run, replaying finished stages\n\
                 \x20 --runs-dir <dir>         base directory for run journals (default target/runs)\n\
                 \x20 --durability <mode>      fast | safe (safe fsyncs every journal append)\n\
                 \x20 --inject-crash <stage>:<n>  exit(3) at the n-th solve of a stage (testing)\n\
                 \x20 --inject-stall <stage>:<n>  hang at the n-th solve of a stage (testing)\n\
                 \n\
                 validation flags (verify, pll):\n\
                 \x20 --validate <trials>      Monte-Carlo check certified claims after verifying;\n\
                 \x20                          exit 2 when a certified claim is violated\n\
                 \n\
                 isolation flags (verify, pll):\n\
                 \x20 --isolate                re-run supervised: heartbeat watchdog, stall\n\
                 \x20                          detection, RSS ceiling, kill-and-resume\n\
                 \x20 --watchdog <secs>        kill worker when stdout is silent this long\n\
                 \x20 --stall-timeout <secs>   kill worker when its journal stops advancing\n\
                 \x20 --heartbeat <ms>         worker heartbeat interval (default 500)\n\
                 \x20 --max-rss <mb>           kill worker above this RSS ceiling\n\
                 \x20 --max-restarts <n>       restarts before giving up (default 3)\n\
                 \x20 --chaos-kill-after <n>   chaos: kill after n heartbeats (then doubles)\n\
                 \x20 --chaos-corrupt-tail <b> chaos: chop b bytes off the journal after kills\n\
                 \n\
                 reduction flags (verify, pll):\n\
                 \x20 --no-reduce              solve the unreduced SDPs (skip basis pruning\n\
                 \x20                          and symmetry block splitting)\n\
                 \n\
                 tracing flags (verify, pll):\n\
                 \x20 --trace-level <level>    off | stage | solve | iter (default off)\n\
                 \x20 --trace-out <dir>        write trace.jsonl, trace.chrome.json and\n\
                 \x20                          metrics.prom under <dir> (implies solve level)"
            );
            ExitCode::FAILURE
        }
    }
}
