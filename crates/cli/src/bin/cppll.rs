//! `cppll` — command-line inevitability verifier.
//!
//! ```text
//! cppll verify <system.json>     run the inevitability pipeline on a spec
//! cppll pll <3|4> [degree]       run the built-in CP PLL benchmarks
//! cppll schema                   print an annotated example spec
//! ```

use std::process::ExitCode;

use cppll_cli::{run_inevitability, SystemSpec};
use cppll_pll::{PllModelBuilder, PllOrder};
use cppll_verify::{InevitabilityVerifier, PipelineOptions, VerificationReport};

const EXAMPLE_SPEC: &str = r#"{
  "states": 2,
  "modes": [
    {"name": "right", "flow": ["-1 x0 + 1 x1", "-1 x0 - 1 x1"], "flow_set": ["x0"]},
    {"name": "left",  "flow": ["-1 x0 + 0.5 x1", "-0.5 x0 - 1 x1"], "flow_set": ["-1 x0"]}
  ],
  "jumps": [
    {"from": 0, "to": 1, "guard_eq": ["x0"]},
    {"from": 1, "to": 0, "guard_eq": ["x0"]}
  ],
  "params": {"lo": [], "hi": []},
  "boundary": ["3 - 1 x0", "3 + 1 x0", "3 - 1 x1", "3 + 1 x1"],
  "initial_radii": [2.0, 2.0],
  "degree": 2
}"#;

fn print_report(report: &VerificationReport) {
    println!("verdict: {:?}", report.verdict);
    println!("attractive invariant level c* = {:.6}", report.levels.level);
    println!(
        "advection: {} iterations, included after {:?}",
        report.advection_iterations(),
        report.included_after()
    );
    println!("escape certificates: {}", report.escape_certificates.len());
    println!("timings:");
    for t in &report.timings {
        println!("  {:<26} {:>9.2}s", t.name, t.seconds);
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("schema") => {
            println!("{EXAMPLE_SPEC}");
            ExitCode::SUCCESS
        }
        Some("verify") => {
            let Some(path) = args.get(1) else {
                eprintln!("usage: cppll verify <system.json>");
                return ExitCode::FAILURE;
            };
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let spec: SystemSpec = match serde_json::from_str(&text) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("cannot parse {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match run_inevitability(&spec) {
                Ok(report) => {
                    print_report(&report);
                    if report.verdict.is_verified() {
                        ExitCode::SUCCESS
                    } else {
                        ExitCode::from(2)
                    }
                }
                Err(e) => {
                    eprintln!("{e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("pll") => {
            let order = match args.get(1).map(String::as_str) {
                Some("3") => PllOrder::Third,
                Some("4") => PllOrder::Fourth,
                _ => {
                    eprintln!("usage: cppll pll <3|4> [degree]");
                    return ExitCode::FAILURE;
                }
            };
            let degree: u32 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4);
            let model = PllModelBuilder::new(order).build();
            println!("CP PLL order {order:?}, certificate degree {degree}");
            println!("scaled coefficients: {}", model.coeffs());
            let verifier = InevitabilityVerifier::for_pll(&model);
            match verifier.verify(&PipelineOptions::degree(degree)) {
                Ok(report) => {
                    print_report(&report);
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("{e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => {
            eprintln!(
                "cppll — inevitability verifier for polynomial hybrid systems\n\
                 \n\
                 usage:\n\
                 \x20 cppll verify <system.json>   verify a JSON system spec\n\
                 \x20 cppll pll <3|4> [degree]     run the CP PLL benchmarks\n\
                 \x20 cppll schema                 print an example spec"
            );
            ExitCode::FAILURE
        }
    }
}
