//! `cppll` — command-line inevitability verifier.
//!
//! ```text
//! cppll verify <system.json>     run the inevitability pipeline on a spec
//! cppll pll <3|4> [degree]       run the built-in CP PLL benchmarks
//! cppll sweep <sweep.json>       certify a 1D/2D parameter grid (atlas)
//! cppll schema [sweep]           print an annotated example (sweep) spec
//! cppll serve                    run the verification daemon (cppll-serve)
//! cppll submit <spec|pll ...>    submit a job to a running daemon
//! cppll status [job]             query a running daemon
//! cppll runs gc                  apply retention GC to the runs directory
//! ```
//!
//! Sweep flags (`sweep` only):
//!
//! ```text
//! --out <dir>              write atlas.json, atlas.canonical.json and
//!                          contour.json under <dir>
//! --via <host:port>        solve cells on a running cppll-serve daemon
//!                          instead of in-process (no warm-start seeding)
//! --no-bisect              solve every grid cell (no adaptive bisection)
//! --coarse <n>             initial lattice stride in cells (default auto)
//! --resolution <n>         stop refining disagreeing rectangles at this
//!                          size (default 1)
//! --sweep-crash-after <n>  exit(3) after journaling n fresh cells (testing)
//! ```
//!
//! Resilience flags (both `verify` and `pll`):
//!
//! ```text
//! --retries <n>            retries per solve on transient failures (default 2)
//! --solve-timeout <secs>   wall-clock budget per solve attempt
//! --deadline <secs>        wall-clock budget for the whole pipeline
//! --threads <n>            SDP solver worker threads (0 = auto, default 0)
//! --kkt-mode <mode>        KKT LDLT kernel: auto | schur | augmented (default auto)
//! ```
//!
//! Durability flags (both `verify` and `pll`):
//!
//! ```text
//! --run-id <id>            journal completed stages under target/runs/<id>
//! --resume <id>            resume a journaled run, replaying finished stages
//! --runs-dir <dir>         base directory for run journals (default target/runs)
//! --durability <mode>      fast | safe — safe fsyncs every journal append
//! --inject-crash <stage>:<n>  exit(3) at the n-th solve of a stage (testing)
//! --inject-stall <stage>:<n>  hang forever at the n-th solve of a stage (testing)
//! ```
//!
//! Validation flags (both `verify` and `pll`):
//!
//! ```text
//! --validate <trials>      after verifying, Monte-Carlo check the certified
//!                          claims on <trials> simulated trajectories; exit 2
//!                          when a certified claim is violated
//! ```
//!
//! Isolation flags (both `verify` and `pll`):
//!
//! ```text
//! --isolate                re-run this command in a supervised worker process
//!                          with heartbeat, watchdog, and kill-and-resume
//! --watchdog <secs>        kill the worker when its stdout is silent this long
//! --stall-timeout <secs>   kill the worker when its journal stops advancing
//! --heartbeat <ms>         worker heartbeat interval (default 500)
//! --max-rss <mb>           kill the worker when its RSS exceeds this ceiling
//! --max-restarts <n>       restarts before giving up (default 3)
//! --chaos-kill-after <n>   chaos test: kill the worker after n heartbeats,
//!                          doubling the allowance after every kill
//! --chaos-corrupt-tail <bytes>  chaos test: chop bytes off the journal tail
//!                          after every chaos kill
//! ```
//!
//! Reduction flags (both `verify` and `pll`):
//!
//! ```text
//! --no-reduce              solve the unreduced SDPs (skip Newton-polytope
//!                          basis pruning and sign-symmetry block splitting)
//! --reduce-mode <m>        support | legacy multiplier-basis derivation
//!                          (default support; legacy is the escape hatch)
//! --cone <c>               sos | sdsos | dsos Gram-block cone; cheaper cones
//!                          run as a screening pass with silent sos fallback
//! ```
//!
//! Tracing flags (both `verify` and `pll`):
//!
//! ```text
//! --trace-level <level>    off | stage | solve | iter (default off; tracing
//!                          never changes results — digests are identical at
//!                          every level)
//! --trace-out <dir>        write trace.jsonl, trace.chrome.json, and
//!                          metrics.prom under <dir> (implies
//!                          --trace-level solve unless one is given)
//! ```

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use cppll_bench::contour::grid_verdict_boundary;
use cppll_cli::{run_inevitability_validated, SystemSpec};
use cppll_harness::{
    run_supervised, ChaosPlan, HarnessError, HarnessOptions, HeartbeatEmitter, WorkerSpec,
};
use cppll_json::{ObjectBuilder, ToJson, Value};
use cppll_pll::{PllModelBuilder, PllOrder};
use cppll_verify::{
    run_sweep, run_sweep_with, Atlas, CellOutcome, CellProblem, CheckpointConfig, CrashMode,
    Durability, EventKind, FaultInjector, FaultPlan, InevitabilityVerifier, PipelineOptions,
    ReduceMode, ReductionOptions, Region, ResilienceConfig, SosCone, SweepSpec, TraceLevel,
    Tracer, ValidationReport, VerificationReport,
};

/// Seed of the `--validate` Monte-Carlo sampler: fixed, so validation runs
/// are reproducible.
const VALIDATE_SEED: u64 = 42;

const EXAMPLE_SPEC: &str = r#"{
  "states": 2,
  "modes": [
    {"name": "right", "flow": ["-1 x0 + 1 x1", "-1 x0 - 1 x1"], "flow_set": ["x0"]},
    {"name": "left",  "flow": ["-1 x0 + 0.5 x1", "-0.5 x0 - 1 x1"], "flow_set": ["-1 x0"]}
  ],
  "jumps": [
    {"from": 0, "to": 1, "guard_eq": ["x0"]},
    {"from": 1, "to": 0, "guard_eq": ["x0"]}
  ],
  "params": {"lo": [], "hi": []},
  "boundary": ["3 - 1 x0", "3 + 1 x0", "3 - 1 x1", "3 + 1 x1"],
  "initial_radii": [2.0, 2.0],
  "degree": 2
}"#;

/// Example sweep spec printed by `cppll schema sweep`: the two-state toy
/// with a `$a`-controlled first coordinate — certified exactly on the left
/// half of the grid, so the bisection chases one vertical boundary. Matches
/// `SweepSpec::example()`.
const EXAMPLE_SWEEP: &str = r#"{
  "target": {
    "kind": "spec",
    "spec": {
      "states": 2,
      "modes": [
        {"name": "flow", "flow": ["$a x0", "-1 x1 + $b x1"]}
      ],
      "boundary": ["3 - 1 x0", "3 + 1 x0", "3 - 1 x1", "3 + 1 x1"],
      "initial_radii": [2.0, 2.0],
      "degree": 2
    }
  },
  "axes": [
    {"name": "a", "min": -1.0, "max": 1.0, "cells": 21},
    {"name": "b", "min": -1.5, "max": -0.5, "cells": 21}
  ],
  "bisect": true
}"#;

fn print_report(report: &VerificationReport) {
    println!("verdict: {:?}", report.verdict);
    println!("attractive invariant level c* = {:.6}", report.levels.level);
    println!(
        "advection: {} iterations, included after {:?}",
        report.advection_iterations(),
        report.included_after()
    );
    println!("escape certificates: {}", report.escape_certificates.len());
    println!("solves: {}", report.solve_stats);
    for f in &report.failures {
        println!("failure: {f}");
        for a in &f.attempts {
            println!("  {}", a.log_line());
        }
    }
    println!("timings:");
    for t in &report.timings {
        println!("  {:<26} {:>9.2}s", t.name, t.seconds);
    }
    if report.reduction.grams > 0 {
        println!("reduction: {}", report.reduction);
        if let Some(d) = report.reduction.detail() {
            println!("  {d}");
        }
    }
    let tm = &report.solve_timings;
    if tm.total > 0.0 {
        println!("solver stages ({} threads):", cppll_par::current_threads());
        for line in tm.report_lines() {
            println!("  {line}");
        }
    }
    println!("result digest: {}", report.result_digest());
    if let Some(run_id) = &report.resume.run_id {
        println!(
            "run {run_id}: {} stage(s) replayed from journal, {} computed fresh, \
             {} warm-started solve(s)",
            report.resume.stages_replayed,
            report.resume.stages_fresh,
            report.resume.warm_started_solves,
        );
        if report.resume.journal_recovered_records > 0 {
            println!(
                "  journal self-healed: {} torn record(s) dropped on open",
                report.resume.journal_recovered_records
            );
        }
    }
}

/// Prints the Monte-Carlo validation block.
fn print_validation(v: &ValidationReport) {
    println!("validation ({} trials, seed {VALIDATE_SEED}):", v.trials);
    println!("  certificate monotone:   {}/{}", v.monotone, v.trials);
    println!("  reached invariant:      {}/{}", v.reached_ai, v.trials);
    println!("  phase-locked:           {}/{}", v.locked, v.trials);
    println!("  worst increase:         {:.3e}", v.worst_increase);
    println!(
        "  verdict: {}",
        if v.all_passed() {
            "all certified claims held"
        } else {
            "CERTIFIED CLAIM VIOLATED"
        }
    );
}

/// Exit code for a completed run: `0` only when the pipeline verified the
/// claim *and* any requested Monte-Carlo validation upheld it; `2` when
/// the verdict is not-verified or a certified claim was violated.
fn verdict_exit(report: &VerificationReport, validation: Option<&ValidationReport>) -> ExitCode {
    let validated = validation.is_none_or(ValidationReport::all_passed);
    if report.verdict.is_verified() && validated {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}

/// Tracing-related command-line options.
#[derive(Default)]
struct TraceFlags {
    out: Option<String>,
    level: Option<TraceLevel>,
}

impl TraceFlags {
    /// The effective recording level: an explicit `--trace-level` wins;
    /// `--trace-out` alone defaults to `solve`.
    fn effective_level(&self) -> TraceLevel {
        match self.level {
            Some(l) => l,
            None if self.out.is_some() => TraceLevel::Solve,
            None => TraceLevel::Off,
        }
    }

    /// The tracer these flags describe, `None` when tracing is off.
    fn tracer(&self) -> Option<Tracer> {
        match self.effective_level() {
            TraceLevel::Off => None,
            level => Some(Tracer::new(level)),
        }
    }
}

/// Prints the `telemetry:` report block and writes the trace files when
/// `--trace-out` was given.
fn emit_telemetry(tracer: Option<&Tracer>, out: Option<&str>) {
    let Some(t) = tracer else { return };
    let events = t.events();
    let spans = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Begin { .. }))
        .count();
    let iterations = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Instant { .. }) && e.name() == "iteration")
        .count();
    println!("telemetry:");
    println!("  level: {}", t.level().as_str());
    println!("  events: {} ({} spans, {} solver iterations)", events.len(), spans, iterations);
    for (name, total) in t.counter_totals() {
        println!("  {name}: {total}");
    }
    if let Some(dir) = out {
        match t.write_all(std::path::Path::new(dir)) {
            Ok(paths) => {
                for p in paths {
                    println!("  wrote {}", p.display());
                }
            }
            Err(e) => eprintln!("cannot write trace files under {dir}: {e}"),
        }
    }
}

/// Durability-related command-line options.
#[derive(Default)]
struct DurabilityFlags {
    run_id: Option<String>,
    resume: Option<String>,
    runs_dir: Option<String>,
    durability: Option<Durability>,
    inject_crash: Option<(String, usize)>,
    inject_stall: Option<(String, usize)>,
}

impl DurabilityFlags {
    /// The checkpoint configuration these flags describe (if any).
    fn checkpoint(&self) -> Result<Option<CheckpointConfig>, String> {
        if self.run_id.is_some() && self.resume.is_some() {
            return Err("--run-id and --resume are mutually exclusive".into());
        }
        let config = match (&self.run_id, &self.resume) {
            (Some(id), None) => Some(CheckpointConfig::new(id.clone())),
            (None, Some(id)) => Some(CheckpointConfig::new(id.clone()).resuming()),
            (None, None) => None,
            (Some(_), Some(_)) => unreachable!(),
        };
        Ok(config.map(|c| {
            let c = match &self.runs_dir {
                Some(dir) => c.with_dir(dir.clone()),
                None => c,
            };
            match self.durability {
                Some(d) => c.with_durability(d),
                None => c,
            }
        }))
    }

    /// Installs the fault injector on `config` when `--inject-crash` or
    /// `--inject-stall` was given. A crash exits with code 3 at the
    /// requested solve; a stall hangs forever there (only the harness stall
    /// watchdog can recover it). Both leave the journal behind for
    /// `--resume`.
    fn arm(&self, config: &mut ResilienceConfig) {
        let mut plan = FaultPlan::default();
        let mut armed = false;
        if let Some((stage, nth)) = &self.inject_crash {
            plan = plan.crash_at_stage_solve(stage.clone(), *nth, CrashMode::Exit(3));
            armed = true;
        }
        if let Some((stage, nth)) = &self.inject_stall {
            plan = plan.crash_at_stage_solve(stage.clone(), *nth, CrashMode::Hang);
            armed = true;
        }
        if armed {
            config.fault = Some(Arc::new(FaultInjector::new(plan)));
        }
    }
}

/// Isolation / supervision command-line options.
#[derive(Default)]
struct HarnessFlags {
    isolate: bool,
    watchdog: Option<Duration>,
    stall_timeout: Option<Duration>,
    heartbeat_ms: Option<u64>,
    max_rss_mb: Option<u64>,
    max_restarts: Option<usize>,
    chaos_kill_after: Option<u64>,
    chaos_corrupt_tail: Option<u64>,
    /// Hidden worker-side flag: emit heartbeats at this interval. Set by
    /// the supervisor on the worker command line, never by hand.
    worker_heartbeat_ms: Option<u64>,
}

/// Service command-line options (`serve`, `submit`, `status`, `runs gc`).
#[derive(Default)]
struct ServeFlags {
    /// `serve`: bind address.
    addr: Option<String>,
    /// `serve`: worker threads.
    workers: Option<usize>,
    /// `serve`: job queue capacity.
    queue_cap: Option<usize>,
    /// `serve`: circuit-breaker threshold.
    breaker_threshold: Option<u32>,
    /// `serve`: seconds suggested in `Retry-After` on 429/503.
    retry_after: Option<u64>,
    /// `serve`/`runs gc`: retention max age in seconds.
    gc_max_age_secs: Option<f64>,
    /// `serve`/`runs gc`: retention keep-newest budget.
    gc_keep: Option<usize>,
    /// `serve`: disable the certificate cache.
    no_cache: bool,
    /// `submit`/`status`: daemon address to talk to.
    server: Option<String>,
    /// `submit`: poll until the job is terminal.
    wait: bool,
    /// `runs gc`: report without deleting.
    dry_run: bool,
}

/// Sweep command-line options (`sweep` only).
#[derive(Default)]
struct SweepFlags {
    /// Write atlas + contour artefacts under this directory.
    out: Option<String>,
    /// Solve cells on a running daemon instead of in-process.
    via: Option<String>,
    /// Disable adaptive bisection (solve every cell).
    no_bisect: bool,
    /// Override the initial lattice stride.
    coarse: Option<usize>,
    /// Override the refinement stop size.
    resolution: Option<usize>,
    /// Test hook: exit(3) after journaling this many fresh cells.
    crash_after: Option<usize>,
}

/// Default daemon bind/connect address.
const DEFAULT_SERVE_ADDR: &str = "127.0.0.1:7171";

/// Parsed command line: positionals plus every flag group.
struct ParsedArgs {
    positional: Vec<String>,
    resilience: ResilienceConfig,
    durability: DurabilityFlags,
    reduction: ReductionOptions,
    trace: TraceFlags,
    harness: HarnessFlags,
    serve: ServeFlags,
    sweep: SweepFlags,
    validate: Option<usize>,
}

/// Extracts every `--flag value` pair from `args`, returning the remaining
/// positional arguments and the flag groups.
fn parse_flags(args: &[String]) -> Result<ParsedArgs, String> {
    fn seconds(flag: &str, v: &str) -> Result<Duration, String> {
        let secs: f64 = v
            .parse()
            .map_err(|_| format!("{flag}: not a number of seconds: {v}"))?;
        if !secs.is_finite() || secs < 0.0 {
            return Err(format!(
                "{flag}: must be a non-negative number of seconds: {v}"
            ));
        }
        Ok(Duration::from_secs_f64(secs))
    }
    fn stage_solve(flag: &str, v: &str) -> Result<(String, usize), String> {
        let (stage, nth) = v
            .rsplit_once(':')
            .ok_or_else(|| format!("{flag}: expected <stage>:<n>, got {v}"))?;
        let nth: usize = nth
            .parse()
            .map_err(|_| format!("{flag}: not a solve index: {nth}"))?;
        Ok((stage.to_string(), nth))
    }
    fn count<T: std::str::FromStr>(flag: &str, v: &str) -> Result<T, String> {
        v.parse().map_err(|_| format!("{flag}: not a count: {v}"))
    }
    let mut config = ResilienceConfig::default();
    let mut durability = DurabilityFlags::default();
    let mut reduction = ReductionOptions::default();
    let mut trace = TraceFlags::default();
    let mut harness = HarnessFlags::default();
    let mut serve = ServeFlags::default();
    let mut sweep = SweepFlags::default();
    let mut validate = None;
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value_of = |flag: &str| {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--retries" => {
                let v = value_of("--retries")?;
                config.retries = v
                    .parse()
                    .map_err(|_| format!("--retries: not a count: {v}"))?;
            }
            "--solve-timeout" => {
                config.solve_timeout =
                    Some(seconds("--solve-timeout", value_of("--solve-timeout")?)?);
            }
            "--deadline" => {
                config.deadline = Some(seconds("--deadline", value_of("--deadline")?)?);
            }
            "--threads" => {
                let v = value_of("--threads")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("--threads: not a count: {v}"))?;
                cppll_par::set_threads(n);
            }
            "--kkt-mode" => {
                let v = value_of("--kkt-mode")?;
                let mode = cppll_sdp::KktMode::parse(v).ok_or_else(|| {
                    format!("--kkt-mode: expected auto|schur|augmented, got {v}")
                })?;
                cppll_sdp::set_default_kkt_mode(mode);
            }
            "--run-id" => durability.run_id = Some(value_of("--run-id")?.to_string()),
            "--resume" => durability.resume = Some(value_of("--resume")?.to_string()),
            "--runs-dir" => durability.runs_dir = Some(value_of("--runs-dir")?.to_string()),
            "--durability" => {
                let v = value_of("--durability")?;
                durability.durability = Some(Durability::parse(v).ok_or_else(|| {
                    format!("--durability: expected fast|safe, got {v}")
                })?);
            }
            "--inject-crash" => {
                durability.inject_crash =
                    Some(stage_solve("--inject-crash", value_of("--inject-crash")?)?);
            }
            "--inject-stall" => {
                durability.inject_stall =
                    Some(stage_solve("--inject-stall", value_of("--inject-stall")?)?);
            }
            "--validate" => {
                validate = Some(count("--validate", value_of("--validate")?)?);
            }
            "--isolate" => harness.isolate = true,
            "--watchdog" => {
                harness.watchdog = Some(seconds("--watchdog", value_of("--watchdog")?)?);
            }
            "--stall-timeout" => {
                harness.stall_timeout =
                    Some(seconds("--stall-timeout", value_of("--stall-timeout")?)?);
            }
            "--heartbeat" => {
                harness.heartbeat_ms = Some(count("--heartbeat", value_of("--heartbeat")?)?);
            }
            "--max-rss" => {
                harness.max_rss_mb = Some(count("--max-rss", value_of("--max-rss")?)?);
            }
            "--max-restarts" => {
                harness.max_restarts =
                    Some(count("--max-restarts", value_of("--max-restarts")?)?);
            }
            "--chaos-kill-after" => {
                harness.chaos_kill_after =
                    Some(count("--chaos-kill-after", value_of("--chaos-kill-after")?)?);
            }
            "--chaos-corrupt-tail" => {
                harness.chaos_corrupt_tail =
                    Some(count("--chaos-corrupt-tail", value_of("--chaos-corrupt-tail")?)?);
            }
            "--worker-heartbeat" => {
                harness.worker_heartbeat_ms =
                    Some(count("--worker-heartbeat", value_of("--worker-heartbeat")?)?);
            }
            "--addr" => serve.addr = Some(value_of("--addr")?.to_string()),
            "--workers" => serve.workers = Some(count("--workers", value_of("--workers")?)?),
            "--queue-cap" => {
                serve.queue_cap = Some(count("--queue-cap", value_of("--queue-cap")?)?);
            }
            "--breaker-threshold" => {
                serve.breaker_threshold = Some(count(
                    "--breaker-threshold",
                    value_of("--breaker-threshold")?,
                )?);
            }
            "--retry-after" => {
                serve.retry_after = Some(count("--retry-after", value_of("--retry-after")?)?);
            }
            "--gc-max-age" => {
                serve.gc_max_age_secs =
                    Some(seconds("--gc-max-age", value_of("--gc-max-age")?)?.as_secs_f64());
            }
            "--gc-keep" => serve.gc_keep = Some(count("--gc-keep", value_of("--gc-keep")?)?),
            "--no-cache" => serve.no_cache = true,
            "--server" => serve.server = Some(value_of("--server")?.to_string()),
            "--wait" => serve.wait = true,
            "--dry-run" => serve.dry_run = true,
            "--out" => sweep.out = Some(value_of("--out")?.to_string()),
            "--via" => sweep.via = Some(value_of("--via")?.to_string()),
            "--no-bisect" => sweep.no_bisect = true,
            "--coarse" => sweep.coarse = Some(count("--coarse", value_of("--coarse")?)?),
            "--resolution" => {
                sweep.resolution = Some(count("--resolution", value_of("--resolution")?)?);
            }
            "--sweep-crash-after" => {
                sweep.crash_after =
                    Some(count("--sweep-crash-after", value_of("--sweep-crash-after")?)?);
            }
            "--no-reduce" => reduction = ReductionOptions::none(),
            "--reduce-mode" => {
                let v = value_of("--reduce-mode")?;
                reduction.mode = ReduceMode::parse(v)
                    .ok_or_else(|| format!("--reduce-mode: expected support|legacy, got {v}"))?;
            }
            "--cone" => {
                let v = value_of("--cone")?;
                reduction.cone = SosCone::parse(v)
                    .ok_or_else(|| format!("--cone: expected sos|sdsos|dsos, got {v}"))?;
            }
            "--trace-out" => trace.out = Some(value_of("--trace-out")?.to_string()),
            "--trace-level" => {
                let v = value_of("--trace-level")?;
                trace.level = Some(TraceLevel::parse(v).ok_or_else(|| {
                    format!("--trace-level: expected off|stage|solve|iter, got {v}")
                })?);
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown flag: {other}"));
            }
            other => positional.push(other.to_string()),
        }
    }
    Ok(ParsedArgs {
        positional,
        resilience: config,
        durability,
        reduction,
        trace,
        harness,
        serve,
        sweep,
        validate,
    })
}

/// Flags that belong to the supervisor only and must be stripped from the
/// worker's command line. `true` means the flag takes a value.
const SUPERVISOR_FLAGS: &[(&str, bool)] = &[
    ("--isolate", false),
    ("--watchdog", true),
    ("--stall-timeout", true),
    ("--heartbeat", true),
    ("--max-rss", true),
    ("--max-restarts", true),
    ("--chaos-kill-after", true),
    ("--chaos-corrupt-tail", true),
];

/// Flags stripped from restart (resume) command lines: an injected fault
/// simulates a one-time environmental failure — replaying it on every
/// resume would turn a chaos test into a livelock.
const ONE_SHOT_FLAGS: &[(&str, bool)] = &[("--inject-crash", true), ("--inject-stall", true)];

/// Removes `drop` flags (and their values) from an argument list.
fn strip_flags(args: &[String], drop: &[(&str, bool)]) -> Vec<String> {
    let mut out = Vec::with_capacity(args.len());
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match drop.iter().find(|(name, _)| name == arg) {
            Some((_, true)) => {
                let _ = it.next();
            }
            Some((_, false)) => {}
            None => out.push(arg.clone()),
        }
    }
    out
}

/// Runs this same command line in a supervised worker process
/// (`--isolate`): heartbeat liveness watchdog, journal-mtime stall
/// detection, RSS ceiling, and kill-and-resume through the run journal.
fn supervise(raw: &[String], parsed: &ParsedArgs) -> ExitCode {
    let program = match std::env::current_exe() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("--isolate: cannot locate own executable: {e}");
            return ExitCode::FAILURE;
        }
    };
    let h = &parsed.harness;
    let d = &parsed.durability;

    // The worker needs a journal for resume to mean anything; synthesize a
    // run id when the user did not name one.
    let mut worker_args = strip_flags(raw, SUPERVISOR_FLAGS);
    let run_id = match (&d.run_id, &d.resume) {
        (Some(id), _) | (_, Some(id)) => id.clone(),
        (None, None) => {
            let t = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_millis())
                .unwrap_or(0);
            let id = format!("isolate-{}-{t}", std::process::id());
            worker_args.push("--run-id".to_string());
            worker_args.push(id.clone());
            id
        }
    };
    let heartbeat_ms = h.heartbeat_ms.unwrap_or(500);
    worker_args.push("--worker-heartbeat".to_string());
    worker_args.push(heartbeat_ms.to_string());

    // Restarts resume the journal and drop one-shot fault injections.
    let mut resume_args = Vec::with_capacity(worker_args.len());
    let mut it = strip_flags(&worker_args, ONE_SHOT_FLAGS).into_iter();
    while let Some(arg) = it.next() {
        if arg == "--run-id" {
            resume_args.push("--resume".to_string());
            if let Some(v) = it.next() {
                resume_args.push(v);
            }
        } else {
            resume_args.push(arg);
        }
    }

    let runs_dir = d.runs_dir.clone().unwrap_or_else(|| "target/runs".to_string());
    let journal = PathBuf::from(&runs_dir).join(&run_id).join("journal.jsonl");

    let spec = WorkerSpec {
        program,
        initial_args: worker_args,
        resume_args,
        envs: Vec::new(),
    };
    let tracer = parsed.trace.tracer();
    let opt = HarnessOptions {
        watchdog: h.watchdog.unwrap_or(Duration::from_secs(30)),
        stall_timeout: h.stall_timeout,
        progress_file: Some(journal.clone()),
        max_rss_kb: h.max_rss_mb.map(|mb| mb.saturating_mul(1024)),
        max_restarts: h.max_restarts.unwrap_or(3),
        chaos: h.chaos_kill_after.map(|n| ChaosPlan {
            kill_after_heartbeats: n,
            growth: 2,
            corrupt_tail: h.chaos_corrupt_tail.map(|bytes| (journal.clone(), bytes)),
        }),
        tracer: tracer.clone(),
        forward_output: true,
    };
    match run_supervised(&spec, &opt) {
        Ok(report) => {
            let reasons: Vec<&str> = report.kills.iter().map(|k| k.name()).collect();
            println!(
                "harness: worker exit {} after {} restart(s), {} kill(s) [{}], \
                 {} heartbeat(s), run {run_id}",
                report.exit_code,
                report.restarts,
                report.kills.len(),
                reasons.join(", "),
                report.heartbeats,
            );
            emit_telemetry(tracer.as_ref(), None);
            ExitCode::from(report.exit_code.clamp(0, 255) as u8)
        }
        Err(e) => {
            eprintln!("harness: {e}");
            if let HarnessError::GaveUp { stderr_tail, .. } = &e {
                for line in stderr_tail {
                    eprintln!("harness: stderr| {line}");
                }
            }
            ExitCode::FAILURE
        }
    }
}

/// Polls `/jobs/<id>` until the job is terminal, returning the terminal
/// record.
fn poll_terminal(addr: &str, id: u64) -> Result<Value, String> {
    loop {
        std::thread::sleep(Duration::from_millis(200));
        let (status, text) = cppll_serve::client_request(addr, "GET", &format!("/jobs/{id}"), None)
            .map_err(|e| format!("lost contact with {addr}: {e}"))?;
        if status != 200 {
            return Err(format!("job {id}: status {status}: {text}"));
        }
        let Ok(v) = cppll_json::parse(&text) else {
            continue;
        };
        if matches!(
            v.get("state").and_then(Value::as_str),
            Some("completed") | Some("failed")
        ) {
            return Ok(v);
        }
    }
}

/// Solves one sweep cell on a running daemon: renders the cell as a
/// concrete spec, submits it, and polls to the terminal state. A `failed`
/// job is a failed *cell* (the daemon already supervised and restarted its
/// worker); only transport errors abort the sweep. The problem fingerprint
/// is computed locally, identically to the in-process solver, so via-mode
/// atlases stay comparable with local ones.
fn via_solve(
    addr: &str,
    problem: &CellProblem,
    reduction: ReductionOptions,
) -> Result<CellOutcome, String> {
    let t0 = std::time::Instant::now();
    let verifier = InevitabilityVerifier::new(
        &problem.system,
        problem.boundary.clone(),
        Region::ellipsoid(&problem.initial_radii),
    );
    let mut popt = PipelineOptions::degree(problem.degree);
    popt.reduction = reduction;
    let fingerprint =
        cppll_verify::checkpoint::fingerprint_hex(verifier.problem_fingerprint(&popt));
    let body = ObjectBuilder::new()
        .field("kind", "verify")
        .field("spec", problem.to_spec().to_json())
        .build()
        .to_compact_string();
    let (status, text) = cppll_serve::client_request(addr, "POST", "/jobs", Some(&body))
        .map_err(|e| format!("cannot reach {addr}: {e}"))?;
    let v = cppll_json::parse(&text).map_err(|e| format!("bad response from {addr}: {e}"))?;
    let terminal = match status {
        200 => v, // certificate-cache hit: already terminal
        202 => {
            let id = v
                .get("id")
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("no job id in response: {text}"))?;
            poll_terminal(addr, id)?
        }
        _ => return Err(format!("submit rejected ({status}): {text}")),
    };
    let completed = terminal.get("state").and_then(Value::as_str) == Some("completed");
    let verified = completed && terminal.get("verified").and_then(Value::as_bool) == Some(true);
    let reason = terminal
        .get("reason")
        .and_then(Value::as_str)
        .map(str::to_string)
        .or_else(|| {
            terminal
                .get("verdict")
                .and_then(Value::as_str)
                .map(str::to_string)
        });
    Ok(CellOutcome {
        certified: verified,
        digest: terminal
            .get("digest")
            .and_then(Value::as_str)
            .map(str::to_string),
        reason: if verified { None } else { reason },
        fingerprint,
        warm_hits: 0,
        warm: Vec::new(),
        seconds: t0.elapsed().as_secs_f64(),
        ledger: cppll_verify::LedgerSnapshot::default(),
    })
}

/// Prints the human sweep summary and writes the `--out` artefacts.
fn emit_atlas(atlas: &Atlas, out: Option<&str>) -> Result<(), String> {
    print!("{}", atlas.ascii());
    let c = &atlas.counters;
    let interior = atlas
        .cells
        .iter()
        .filter(|x| x.status == cppll_verify::CellStatus::Interior)
        .count();
    println!(
        "atlas: {}x{} grid — {} certified, {} failed, {} skipped by bisection \
         ({} interior, {} unresolved), {} wave(s)",
        atlas.nx,
        atlas.ny,
        c.cells_certified,
        c.cells_failed,
        c.cells_skipped_by_bisection,
        interior,
        c.cells_skipped_by_bisection - interior,
        atlas.waves,
    );
    println!(
        "warm starts: {} hit(s); journal: {} cell(s) replayed",
        c.warm_start_hits, c.cells_replayed,
    );
    println!("atlas digest: {}", atlas.digest());
    println!("total: {:.2}s", atlas.total_seconds);
    let Some(dir) = out else { return Ok(()) };
    let dir = PathBuf::from(dir);
    std::fs::create_dir_all(&dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    let write = |name: &str, contents: &str| -> Result<(), String> {
        let p = dir.join(name);
        std::fs::write(&p, contents).map_err(|e| format!("cannot write {}: {e}", p.display()))?;
        println!("wrote {}", p.display());
        Ok(())
    };
    write("atlas.json", &atlas.full_json().to_compact_string())?;
    write("atlas.canonical.json", &atlas.canonical_json())?;
    // 1D sweeps trace against a single synthetic row at y = 0.
    let ys = if atlas.ys.is_empty() {
        vec![0.0]
    } else {
        atlas.ys.clone()
    };
    let curve = grid_verdict_boundary(
        &atlas.xs,
        &ys,
        &atlas.certified_mask(),
        "certified-region boundary",
    );
    let contour = ObjectBuilder::new()
        .field("curves", vec![curve])
        .build()
        .to_compact_string();
    write("contour.json", &contour)
}

/// `cppll sweep <sweep.json>` — certify a parameter grid into an atlas.
#[allow(clippy::too_many_arguments)]
fn cmd_sweep(
    args: &[String],
    resilience: ResilienceConfig,
    checkpoint: Option<CheckpointConfig>,
    reduction: ReductionOptions,
    trace_out: Option<&str>,
    tracer: Option<Tracer>,
    flags: &SweepFlags,
) -> ExitCode {
    let Some(path) = args.get(1) else {
        eprintln!("usage: cppll sweep <sweep.json> [--out <dir>] [--via <host:port>]");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut spec = match SweepSpec::from_json_str(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot parse {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if flags.no_bisect {
        spec.bisect = false;
    }
    if let Some(c) = flags.coarse {
        spec.coarse = c;
    }
    if let Some(r) = flags.resolution {
        spec.resolution = r;
    }
    let opt = cppll_verify::SweepOptions {
        threads: 0, // cell-level parallelism follows the global --threads
        resilience,
        reduction,
        trace: tracer.clone(),
        checkpoint,
        crash_after_cells: flags.crash_after,
    };
    let result = match &flags.via {
        Some(addr) => {
            let addr = addr.clone();
            let solver = move |_cell: usize,
                               problem: &CellProblem,
                               _seed: Option<Vec<Option<cppll_sdp::SdpSolution>>>| {
                via_solve(&addr, problem, reduction)
            };
            run_sweep_with(&spec, &opt, &solver)
        }
        None => run_sweep(&spec, &opt),
    };
    match result {
        Ok(atlas) => {
            if let Err(e) = emit_atlas(&atlas, flags.out.as_deref()) {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
            emit_telemetry(tracer.as_ref(), trace_out);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

/// `cppll serve` — run the verification daemon until SIGTERM/SIGINT or
/// `POST /shutdown`, drain, and exit 0.
fn cmd_serve(parsed: &ParsedArgs) -> ExitCode {
    let program = match std::env::current_exe() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("serve: cannot locate own executable: {e}");
            return ExitCode::FAILURE;
        }
    };
    let s = &parsed.serve;
    let h = &parsed.harness;
    let mut supervision = cppll_serve::WorkerSupervision::default();
    if let Some(w) = h.watchdog {
        supervision.watchdog = w;
    }
    supervision.stall_timeout = h.stall_timeout;
    if let Some(ms) = h.heartbeat_ms {
        supervision.heartbeat_ms = ms;
    }
    supervision.max_rss_mb = h.max_rss_mb;
    if let Some(n) = h.max_restarts {
        supervision.max_restarts = n;
    }
    let opt = cppll_serve::ServeOptions {
        addr: s.addr.clone().unwrap_or_else(|| DEFAULT_SERVE_ADDR.to_string()),
        workers: s.workers.unwrap_or(2),
        queue_capacity: s.queue_cap.unwrap_or(64),
        runs_dir: PathBuf::from(
            parsed
                .durability
                .runs_dir
                .clone()
                .unwrap_or_else(|| "target/runs".to_string()),
        ),
        durability: parsed.durability.durability.unwrap_or_default(),
        cache_enabled: !s.no_cache,
        breaker_threshold: s.breaker_threshold.unwrap_or(3),
        retry_after_secs: s.retry_after.unwrap_or(2),
        runner: cppll_serve::JobRunner::Process { program },
        supervision,
        gc: cppll_serve::GcPolicy {
            max_age: s.gc_max_age_secs.map(Duration::from_secs_f64),
            keep: s.gc_keep,
        },
        tracer: parsed
            .trace
            .tracer()
            .unwrap_or_else(|| Tracer::new(TraceLevel::Stage)),
    };
    cppll_serve::install_shutdown_handler();
    let server = match cppll_serve::Server::start(opt) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("serve: listening on {}", server.addr());
    while !cppll_serve::shutdown_requested() && !server.is_draining() {
        std::thread::sleep(Duration::from_millis(100));
    }
    println!("serve: draining (queued and running jobs finish first)");
    server.shutdown();
    server.join();
    println!("serve: drained cleanly");
    ExitCode::SUCCESS
}

/// Builds the job-request body for `cppll submit` from the command line:
/// the spec (or PLL benchmark selector) plus the resilience and chaos
/// flags, which flow into the worker's supervisor on the daemon side.
fn submit_body(parsed: &ParsedArgs) -> Result<String, String> {
    let args = &parsed.positional;
    let mut b = match args.get(1).map(String::as_str) {
        Some("pll") => {
            let order: u64 = args
                .get(2)
                .and_then(|s| s.parse().ok())
                .ok_or("usage: cppll submit pll <3|4> [degree]")?;
            let degree: u64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(4);
            ObjectBuilder::new()
                .field("kind", "pll")
                .field("order", order)
                .field("degree", degree)
        }
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read {path}: {e}"))?;
            let spec =
                cppll_json::parse(&text).map_err(|e| format!("cannot parse {path}: {e}"))?;
            ObjectBuilder::new().field("kind", "verify").field("spec", spec)
        }
        None => {
            return Err(
                "usage: cppll submit <system.json> | cppll submit pll <3|4> [degree]".into(),
            )
        }
    };
    let r = &parsed.resilience;
    if let Some(d) = r.deadline {
        b = b.field("deadline_secs", d.as_secs_f64());
    }
    if let Some(t) = r.solve_timeout {
        b = b.field("solve_timeout_secs", t.as_secs_f64());
    }
    if r.retries != ResilienceConfig::default().retries {
        b = b.field("retries", r.retries as u64);
    }
    let h = &parsed.harness;
    if let Some(n) = h.max_restarts {
        b = b.field("max_restarts", n as u64);
    }
    if let Some(n) = h.chaos_kill_after {
        b = b.field("chaos_kill_after", n);
    }
    if let Some(n) = h.chaos_corrupt_tail {
        b = b.field("chaos_corrupt_tail", n);
    }
    Ok(b.build().to_compact_string())
}

/// Polls a submitted job until it is terminal; exit 0 verified, 2
/// completed-but-not-verified, 1 failed.
fn wait_for_job(addr: &str, id: u64) -> ExitCode {
    loop {
        std::thread::sleep(Duration::from_millis(200));
        let Ok((status, text)) =
            cppll_serve::client_request(addr, "GET", &format!("/jobs/{id}"), None)
        else {
            eprintln!("submit: lost contact with {addr}");
            return ExitCode::FAILURE;
        };
        if status != 200 {
            eprintln!("{text}");
            return ExitCode::FAILURE;
        }
        let Ok(v) = cppll_json::parse(&text) else {
            continue;
        };
        match v.get("state").and_then(Value::as_str) {
            Some("completed") => {
                println!("{text}");
                return if v.get("verified").and_then(Value::as_bool) == Some(true) {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::from(2)
                };
            }
            Some("failed") => {
                println!("{text}");
                return ExitCode::FAILURE;
            }
            _ => {}
        }
    }
}

/// `cppll submit` — post one job to a running daemon.
fn cmd_submit(parsed: &ParsedArgs) -> ExitCode {
    let addr = parsed
        .serve
        .server
        .clone()
        .unwrap_or_else(|| DEFAULT_SERVE_ADDR.to_string());
    let body = match submit_body(parsed) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let (status, text) = match cppll_serve::client_request(&addr, "POST", "/jobs", Some(&body)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("submit: cannot reach {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("{text}");
    match status {
        // Cache hit: the response already carries the terminal record.
        200 => ExitCode::SUCCESS,
        202 if parsed.serve.wait => {
            let id = cppll_json::parse(&text)
                .ok()
                .and_then(|v| v.get("id").and_then(Value::as_u64));
            match id {
                Some(id) => wait_for_job(&addr, id),
                None => {
                    eprintln!("submit: no job id in response");
                    ExitCode::FAILURE
                }
            }
        }
        202 => ExitCode::SUCCESS,
        _ => ExitCode::FAILURE,
    }
}

/// `cppll status [job]` — query a running daemon (`/healthz` without an
/// argument, `/jobs/<id>` with one).
fn cmd_status(parsed: &ParsedArgs) -> ExitCode {
    let addr = parsed
        .serve
        .server
        .clone()
        .unwrap_or_else(|| DEFAULT_SERVE_ADDR.to_string());
    let path = match parsed.positional.get(1) {
        Some(job) => format!("/jobs/{job}"),
        None => "/healthz".to_string(),
    };
    match cppll_serve::client_request(&addr, "GET", &path, None) {
        Ok((200, text)) => {
            println!("{text}");
            ExitCode::SUCCESS
        }
        Ok((status, text)) => {
            eprintln!("status {status}: {text}");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("status: cannot reach {addr}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `cppll runs gc` — apply a retention policy to the runs directory.
fn cmd_runs_gc(parsed: &ParsedArgs) -> ExitCode {
    if parsed.positional.get(1).map(String::as_str) != Some("gc") {
        eprintln!("usage: cppll runs gc [--gc-max-age <secs>] [--gc-keep <n>] [--dry-run]");
        return ExitCode::FAILURE;
    }
    let s = &parsed.serve;
    let policy = cppll_serve::GcPolicy {
        max_age: s.gc_max_age_secs.map(Duration::from_secs_f64),
        keep: s.gc_keep,
    };
    if !policy.is_active() {
        eprintln!("runs gc: give at least one of --gc-max-age <secs> / --gc-keep <n>");
        return ExitCode::FAILURE;
    }
    let runs_dir = PathBuf::from(
        parsed
            .durability
            .runs_dir
            .clone()
            .unwrap_or_else(|| "target/runs".to_string()),
    );
    match cppll_serve::gc_runs(&runs_dir, &policy, &std::collections::HashSet::new(), s.dry_run) {
        Ok(r) => {
            println!(
                "runs gc{}: scanned {}, removed {}, kept {}, protected {}",
                if s.dry_run { " (dry run)" } else { "" },
                r.scanned,
                r.removed,
                r.kept,
                r.protected,
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("runs gc: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match parse_flags(&raw) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    if parsed.harness.isolate {
        return supervise(&raw, &parsed);
    }
    // Service subcommands keep the full flag groups, so dispatch before
    // the worker-oriented destructuring below.
    match parsed.positional.first().map(String::as_str) {
        Some("serve") => return cmd_serve(&parsed),
        Some("submit") => return cmd_submit(&parsed),
        Some("status") => return cmd_status(&parsed),
        Some("runs") => return cmd_runs_gc(&parsed),
        _ => {}
    }
    // Supervised worker: heartbeat for the life of the process.
    let _heartbeat = parsed
        .harness
        .worker_heartbeat_ms
        .map(|ms| HeartbeatEmitter::start(Duration::from_millis(ms.max(1))));
    let ParsedArgs {
        positional: args,
        mut resilience,
        durability,
        reduction,
        trace,
        sweep: sweep_flags,
        validate,
        ..
    } = parsed;
    let checkpoint = match durability.checkpoint() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    durability.arm(&mut resilience);
    let tracer = trace.tracer();
    match args.first().map(String::as_str) {
        Some("schema") => {
            if args.get(1).map(String::as_str) == Some("sweep") {
                println!("{EXAMPLE_SWEEP}");
            } else {
                println!("{EXAMPLE_SPEC}");
            }
            ExitCode::SUCCESS
        }
        Some("sweep") => cmd_sweep(
            &args,
            resilience,
            checkpoint,
            reduction,
            trace.out.as_deref(),
            tracer,
            &sweep_flags,
        ),
        Some("verify") => {
            let Some(path) = args.get(1) else {
                eprintln!("usage: cppll verify <system.json>");
                return ExitCode::FAILURE;
            };
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let spec: SystemSpec = match SystemSpec::from_json_str(&text) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("cannot parse {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match run_inevitability_validated(
                &spec,
                resilience,
                checkpoint,
                reduction,
                tracer.clone(),
                validate.map(|trials| (trials, VALIDATE_SEED)),
            ) {
                Ok((report, validation)) => {
                    print_report(&report);
                    if let Some(v) = &validation {
                        print_validation(v);
                    }
                    emit_telemetry(tracer.as_ref(), trace.out.as_deref());
                    verdict_exit(&report, validation.as_ref())
                }
                Err(e) => {
                    eprintln!("{e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("pll") => {
            let order = match args.get(1).map(String::as_str) {
                Some("3") => PllOrder::Third,
                Some("4") => PllOrder::Fourth,
                _ => {
                    eprintln!("usage: cppll pll <3|4> [degree]");
                    return ExitCode::FAILURE;
                }
            };
            let degree: u32 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4);
            let model = PllModelBuilder::new(order).build();
            println!("CP PLL order {order:?}, certificate degree {degree}");
            println!("scaled coefficients: {}", model.coeffs());
            let verifier = InevitabilityVerifier::for_pll(&model);
            let mut opt = PipelineOptions::degree(degree);
            opt.resilience = resilience;
            opt.checkpoint = checkpoint;
            opt.reduction = reduction;
            opt.trace = tracer.clone();
            match verifier.verify(&opt) {
                Ok(report) => {
                    print_report(&report);
                    let validation = validate
                        .and_then(|trials| verifier.validate(&report, trials, VALIDATE_SEED));
                    if let Some(v) = &validation {
                        print_validation(v);
                    }
                    emit_telemetry(tracer.as_ref(), trace.out.as_deref());
                    verdict_exit(&report, validation.as_ref())
                }
                Err(e) => {
                    eprintln!("{e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => {
            eprintln!(
                "cppll — inevitability verifier for polynomial hybrid systems\n\
                 \n\
                 usage:\n\
                 \x20 cppll verify <system.json>   verify a JSON system spec\n\
                 \x20 cppll pll <3|4> [degree]     run the CP PLL benchmarks\n\
                 \x20 cppll sweep <sweep.json>     certify a 1D/2D parameter grid\n\
                 \x20 cppll schema [sweep]         print an example (sweep) spec\n\
                 \x20 cppll serve                  run the verification daemon\n\
                 \x20 cppll submit <spec|pll ...>  submit a job to a daemon\n\
                 \x20 cppll status [job]           query a daemon\n\
                 \x20 cppll runs gc                apply retention GC to runs/\n\
                 \n\
                 service flags (serve):\n\
                 \x20 --addr <host:port>       bind address (default 127.0.0.1:7171)\n\
                 \x20 --workers <n>            worker processes (default 2)\n\
                 \x20 --queue-cap <n>          job queue capacity; beyond it, submissions\n\
                 \x20                          get 429 + Retry-After (default 64)\n\
                 \x20 --breaker-threshold <n>  worker-death failures before a spec is\n\
                 \x20                          quarantined with 409 (default 3)\n\
                 \x20 --retry-after <secs>     Retry-After hint on 429/503 (default 2)\n\
                 \x20 --no-cache               disable the certificate cache\n\
                 \x20 --gc-max-age <secs>      retention GC: drop runs older than this\n\
                 \x20 --gc-keep <n>            retention GC: keep at most n newest runs\n\
                 \n\
                 service flags (submit, status):\n\
                 \x20 --server <host:port>     daemon to talk to (default 127.0.0.1:7171)\n\
                 \x20 --wait                   submit: poll until the job is terminal\n\
                 \n\
                 service flags (runs gc):\n\
                 \x20 --dry-run                report what would be removed, remove nothing\n\
                 \n\
                 sweep flags (sweep):\n\
                 \x20 --out <dir>              write atlas.json, atlas.canonical.json,\n\
                 \x20                          contour.json under <dir>\n\
                 \x20 --via <host:port>        solve cells on a running daemon (no\n\
                 \x20                          warm-start seeding in this mode)\n\
                 \x20 --no-bisect              solve every grid cell\n\
                 \x20 --coarse <n>             initial lattice stride (default auto)\n\
                 \x20 --resolution <n>         refinement stop size (default 1)\n\
                 \x20 --sweep-crash-after <n>  exit(3) after n fresh cells (testing)\n\
                 \n\
                 resilience flags (verify, pll):\n\
                 \x20 --retries <n>            retries per solve on transient failures (default 2)\n\
                 \x20 --solve-timeout <secs>   wall-clock budget per solve attempt\n\
                 \x20 --deadline <secs>        wall-clock budget for the whole pipeline\n\
                 \x20 --threads <n>            SDP solver worker threads (0 = auto)\n\
                 \x20 --kkt-mode <mode>        KKT LDLT kernel: auto | schur | augmented\n\
                 \x20                          (bit-identical results; wall-clock only)\n\
                 \n\
                 durability flags (verify, pll):\n\
                 \x20 --run-id <id>            journal completed stages under target/runs/<id>\n\
                 \x20 --resume <id>            resume a journaled run, replaying finished stages\n\
                 \x20 --runs-dir <dir>         base directory for run journals (default target/runs)\n\
                 \x20 --durability <mode>      fast | safe (safe fsyncs every journal append)\n\
                 \x20 --inject-crash <stage>:<n>  exit(3) at the n-th solve of a stage (testing)\n\
                 \x20 --inject-stall <stage>:<n>  hang at the n-th solve of a stage (testing)\n\
                 \n\
                 validation flags (verify, pll):\n\
                 \x20 --validate <trials>      Monte-Carlo check certified claims after verifying;\n\
                 \x20                          exit 2 when a certified claim is violated\n\
                 \n\
                 isolation flags (verify, pll):\n\
                 \x20 --isolate                re-run supervised: heartbeat watchdog, stall\n\
                 \x20                          detection, RSS ceiling, kill-and-resume\n\
                 \x20 --watchdog <secs>        kill worker when stdout is silent this long\n\
                 \x20 --stall-timeout <secs>   kill worker when its journal stops advancing\n\
                 \x20 --heartbeat <ms>         worker heartbeat interval (default 500)\n\
                 \x20 --max-rss <mb>           kill worker above this RSS ceiling\n\
                 \x20 --max-restarts <n>       restarts before giving up (default 3)\n\
                 \x20 --chaos-kill-after <n>   chaos: kill after n heartbeats (then doubles)\n\
                 \x20 --chaos-corrupt-tail <b> chaos: chop b bytes off the journal after kills\n\
                 \n\
                 reduction flags (verify, pll):\n\
                 \x20 --no-reduce              solve the unreduced SDPs (skip basis pruning\n\
                 \x20                          and symmetry block splitting)\n\
                 \x20 --reduce-mode <m>        support | legacy multiplier bases (default\n\
                 \x20                          support: Newton-polytope filtering + screening\n\
                 \x20                          with silent legacy fallback)\n\
                 \x20 --cone <c>               sos | sdsos | dsos Gram cone (non-sos cones\n\
                 \x20                          screen first, fall back to sos on failure)\n\
                 \n\
                 tracing flags (verify, pll):\n\
                 \x20 --trace-level <level>    off | stage | solve | iter (default off)\n\
                 \x20 --trace-out <dir>        write trace.jsonl, trace.chrome.json and\n\
                 \x20                          metrics.prom under <dir> (implies solve level)"
            );
            ExitCode::FAILURE
        }
    }
}
