//! JSON front-end for the verification pipeline.
//!
//! Lets a downstream user describe a polynomial hybrid system in a JSON
//! file and run the paper's inevitability methodology (or a barrier-safety
//! query) without writing Rust. Polynomials are written as human-readable
//! term sums, e.g. `"-1.0 x0 + 2 x0^2 x1 - 0.5"`.
//!
//! # Schema
//!
//! ```json
//! {
//!   "states": 2,
//!   "modes": [
//!     {"name": "right", "flow": ["-1 x0 + 1 x1", "-1 x1"], "flow_set": ["x0"]},
//!     {"name": "left",  "flow": ["-1 x0", "-1 x1"],        "flow_set": ["-1 x0"]}
//!   ],
//!   "jumps": [
//!     {"from": 0, "to": 1, "guard_eq": ["x0"]},
//!     {"from": 1, "to": 0, "guard_eq": ["x0"]}
//!   ],
//!   "params": {"lo": [], "hi": []},
//!   "boundary": ["3 - 1 x0", "3 + 1 x0", "3 - 1 x1", "3 + 1 x1"],
//!   "initial_radii": [2.0, 2.0],
//!   "degree": 2
//! }
//! ```
//!
//! See [`SystemSpec`] for every field and [`run_inevitability`] for the
//! execution entry point used by the `cppll` binary.
//!
//! The spec parser and pipeline runners now live in `cppll-verify`
//! ([`cppll_verify::spec`] / [`cppll_verify::parse`]) so that server-side
//! front-ends (`cppll-serve`) can consume them without depending on the
//! CLI; this crate re-exports them unchanged for compatibility.

pub use cppll_verify::parse::{parse_polynomial, ParsePolynomialError};
pub use cppll_verify::spec::{
    run_inevitability, run_inevitability_checkpointed, run_inevitability_traced,
    run_inevitability_tuned, run_inevitability_validated, run_inevitability_with,
    spec_fingerprint, JumpSpec, ModeSpec, ParamSpec, SpecError, SystemSpec,
};
