//! JSON system specification and pipeline execution.

use cppll_hybrid::{HybridSystem, Jump, Mode, ParamBox};
use cppll_poly::Polynomial;
use cppll_verify::{InevitabilityVerifier, PipelineOptions, Region, VerificationReport};
use serde::{Deserialize, Serialize};

use crate::parse::{parse_polynomial, ParsePolynomialError};

/// One mode of the system.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModeSpec {
    /// Mode name.
    pub name: String,
    /// Flow components `ẋᵢ` as polynomial strings over states (+ params).
    pub flow: Vec<String>,
    /// Flow-set inequalities `g(x) ≥ 0` over the states.
    #[serde(default)]
    pub flow_set: Vec<String>,
}

/// One jump of the system.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JumpSpec {
    /// Source mode index.
    pub from: usize,
    /// Target mode index.
    pub to: usize,
    /// Guard inequalities `g(x) ≥ 0`.
    #[serde(default)]
    pub guard: Vec<String>,
    /// Guard equalities `h(x) = 0`.
    #[serde(default)]
    pub guard_eq: Vec<String>,
    /// Reset map components (identity when omitted).
    #[serde(default)]
    pub reset: Vec<String>,
}

/// Uncertain-parameter box.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ParamSpec {
    /// Lower bounds.
    #[serde(default)]
    pub lo: Vec<f64>,
    /// Upper bounds.
    #[serde(default)]
    pub hi: Vec<f64>,
}

/// A polynomial hybrid system plus the inevitability query.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SystemSpec {
    /// Number of state variables (`x0 … x{n−1}`).
    pub states: usize,
    /// Modes.
    pub modes: Vec<ModeSpec>,
    /// Jumps.
    #[serde(default)]
    pub jumps: Vec<JumpSpec>,
    /// Uncertain parameters (appended as `x{n} …` in flow strings).
    #[serde(default)]
    pub params: ParamSpec,
    /// Verified-region boundary inequalities `g(x) ≥ 0`.
    pub boundary: Vec<String>,
    /// Semi-axes of the ellipsoidal initial set.
    pub initial_radii: Vec<f64>,
    /// Lyapunov certificate degree (even).
    #[serde(default = "default_degree")]
    pub degree: u32,
}

fn default_degree() -> u32 {
    2
}

/// Errors surfaced while interpreting a [`SystemSpec`].
#[derive(Debug)]
pub enum SpecError {
    /// A polynomial string failed to parse (`context` says which field).
    Parse {
        /// Field the string came from.
        context: String,
        /// Underlying parse error.
        source: ParsePolynomialError,
    },
    /// The specification is structurally inconsistent.
    Invalid {
        /// What is wrong.
        message: String,
    },
    /// The verification pipeline failed.
    Verify(cppll_verify::VerifyError),
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::Parse { context, source } => write!(f, "in {context}: {source}"),
            SpecError::Invalid { message } => write!(f, "invalid spec: {message}"),
            SpecError::Verify(e) => write!(f, "verification failed: {e}"),
        }
    }
}

impl std::error::Error for SpecError {}

impl SystemSpec {
    /// Builds the [`HybridSystem`] the spec describes.
    ///
    /// # Errors
    ///
    /// [`SpecError::Parse`] / [`SpecError::Invalid`] on malformed input.
    pub fn build_system(&self) -> Result<HybridSystem, SpecError> {
        let n = self.states;
        if self.params.lo.len() != self.params.hi.len() {
            return Err(SpecError::Invalid {
                message: "params.lo and params.hi must have equal length".into(),
            });
        }
        let ring = n + self.params.lo.len();
        let parse = |s: &str, nv: usize, ctx: &str| {
            parse_polynomial(s, nv).map_err(|source| SpecError::Parse {
                context: ctx.to_string(),
                source,
            })
        };
        let mut modes = Vec::with_capacity(self.modes.len());
        for (mi, m) in self.modes.iter().enumerate() {
            if m.flow.len() != n {
                return Err(SpecError::Invalid {
                    message: format!(
                        "mode {mi} has {} flow components; system has {n} states",
                        m.flow.len()
                    ),
                });
            }
            let flow: Vec<Polynomial> = m
                .flow
                .iter()
                .map(|s| parse(s, ring, &format!("modes[{mi}].flow")))
                .collect::<Result<_, _>>()?;
            let flow_set: Vec<Polynomial> = m
                .flow_set
                .iter()
                .map(|s| parse(s, n, &format!("modes[{mi}].flow_set")))
                .collect::<Result<_, _>>()?;
            modes.push(Mode::new(m.name.clone(), flow).with_flow_set(flow_set));
        }
        let mut jumps = Vec::with_capacity(self.jumps.len());
        for (ji, j) in self.jumps.iter().enumerate() {
            if j.from >= self.modes.len() || j.to >= self.modes.len() {
                return Err(SpecError::Invalid {
                    message: format!("jump {ji} references an unknown mode"),
                });
            }
            let mut jump = Jump::identity(j.from, j.to)
                .with_guard(
                    j.guard
                        .iter()
                        .map(|s| parse(s, n, &format!("jumps[{ji}].guard")))
                        .collect::<Result<_, _>>()?,
                )
                .with_guard_eq(
                    j.guard_eq
                        .iter()
                        .map(|s| parse(s, n, &format!("jumps[{ji}].guard_eq")))
                        .collect::<Result<_, _>>()?,
                );
            if !j.reset.is_empty() {
                if j.reset.len() != n {
                    return Err(SpecError::Invalid {
                        message: format!("jump {ji} reset must have {n} components"),
                    });
                }
                jump = jump.with_reset(
                    j.reset
                        .iter()
                        .map(|s| parse(s, n, &format!("jumps[{ji}].reset")))
                        .collect::<Result<_, _>>()?,
                );
            }
            jumps.push(jump);
        }
        Ok(HybridSystem::with_params(
            n,
            modes,
            jumps,
            ParamBox::new(self.params.lo.clone(), self.params.hi.clone()),
        ))
    }

    /// Parses the boundary inequalities.
    ///
    /// # Errors
    ///
    /// [`SpecError::Parse`] on malformed polynomials.
    pub fn build_boundary(&self) -> Result<Vec<Polynomial>, SpecError> {
        self.boundary
            .iter()
            .map(|s| {
                parse_polynomial(s, self.states).map_err(|source| SpecError::Parse {
                    context: "boundary".into(),
                    source,
                })
            })
            .collect()
    }
}

/// Runs the inevitability pipeline for a JSON spec.
///
/// # Errors
///
/// [`SpecError`] on malformed input or pipeline failure.
pub fn run_inevitability(spec: &SystemSpec) -> Result<VerificationReport, SpecError> {
    if spec.initial_radii.len() != spec.states {
        return Err(SpecError::Invalid {
            message: "initial_radii must have one entry per state".into(),
        });
    }
    let system = spec.build_system()?;
    let boundary = spec.build_boundary()?;
    let initial = Region::ellipsoid(&spec.initial_radii);
    let verifier = InevitabilityVerifier::new(&system, boundary, initial);
    verifier
        .verify(&PipelineOptions::degree(spec.degree))
        .map_err(SpecError::Verify)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_spec() -> SystemSpec {
        serde_json::from_str(
            r#"{
              "states": 2,
              "modes": [
                {"name": "right", "flow": ["-1 x0 + 1 x1", "-1 x0 - 1 x1"], "flow_set": ["x0"]},
                {"name": "left",  "flow": ["-1 x0 + 0.5 x1", "-0.5 x0 - 1 x1"], "flow_set": ["-1 x0"]}
              ],
              "jumps": [
                {"from": 0, "to": 1, "guard_eq": ["x0"]},
                {"from": 1, "to": 0, "guard_eq": ["x0"]}
              ],
              "boundary": ["3 - 1 x0", "3 + 1 x0", "3 - 1 x1", "3 + 1 x1"],
              "initial_radii": [2.0, 2.0],
              "degree": 2
            }"#,
        )
        .expect("valid json")
    }

    #[test]
    fn spec_round_trips_through_json() {
        let spec = toy_spec();
        let json = serde_json::to_string(&spec).unwrap();
        let back: SystemSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back.states, 2);
        assert_eq!(back.modes.len(), 2);
        assert_eq!(back.jumps.len(), 2);
    }

    #[test]
    fn builds_hybrid_system() {
        let sys = toy_spec().build_system().expect("valid spec");
        assert_eq!(sys.nstates(), 2);
        assert_eq!(sys.modes().len(), 2);
        assert_eq!(sys.jumps().len(), 2);
        // Flow evaluates as written.
        let f = sys.eval_flow(0, &[1.0, 2.0], &[]);
        assert_eq!(f, vec![1.0, -3.0]);
    }

    #[test]
    fn end_to_end_verification_from_json() {
        let report = run_inevitability(&toy_spec()).expect("toy verifies");
        assert!(report.verdict.is_verified());
    }

    #[test]
    fn uncertain_parameters_flow_through_json() {
        // ẋ = −u·x with u ∈ [1, 2]: parameters are extra ring variables in
        // flow strings (x1 here), and the pipeline must verify robustly
        // over the box vertices.
        let spec: SystemSpec = serde_json::from_str(
            r#"{
              "states": 1,
              "modes": [{"name": "decay", "flow": ["-1 x0 x1"]}],
              "params": {"lo": [1.0], "hi": [2.0]},
              "boundary": ["3 - 1 x0", "3 + 1 x0"],
              "initial_radii": [2.0],
              "degree": 2
            }"#,
        )
        .expect("valid json");
        let sys = spec.build_system().expect("valid spec");
        assert_eq!(sys.params().len(), 1);
        assert_eq!(sys.eval_flow(0, &[2.0], &[1.5]), vec![-3.0]);
        let report = run_inevitability(&spec).expect("verifies");
        assert!(report.verdict.is_verified());
    }

    #[test]
    fn structural_errors_are_reported() {
        let mut spec = toy_spec();
        spec.modes[0].flow.pop();
        assert!(matches!(
            spec.build_system(),
            Err(SpecError::Invalid { .. })
        ));
        let mut spec2 = toy_spec();
        spec2.jumps[0].from = 9;
        assert!(matches!(
            spec2.build_system(),
            Err(SpecError::Invalid { .. })
        ));
        let mut spec3 = toy_spec();
        spec3.modes[0].flow[0] = "x7".into();
        assert!(matches!(spec3.build_system(), Err(SpecError::Parse { .. })));
    }
}
