//! End-to-end determinism acceptance tests for `cppll sweep`: the canonical
//! atlas artefact must be byte-identical across worker-thread counts, and
//! across a mid-sweep crash followed by `--resume` through the run journal.

use std::path::PathBuf;
use std::process::{Command, Output};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_cppll")
}

/// A fresh scratch directory for one test, wiped before use.
fn scratch(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("cppll-sweep-cli").join(test);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Writes the built-in example sweep (from `cppll schema sweep`) into `dir`.
fn toy_sweep(dir: &std::path::Path) -> PathBuf {
    let out = Command::new(bin()).args(["schema", "sweep"]).output().unwrap();
    assert!(out.status.success());
    let path = dir.join("sweep.json");
    std::fs::write(&path, &out.stdout).unwrap();
    path
}

fn run(args: &[&str]) -> Output {
    Command::new(bin()).args(args).output().unwrap()
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// Extracts the `atlas digest: <hex16>` line.
fn digest(text: &str) -> String {
    text.lines()
        .find_map(|l| l.strip_prefix("atlas digest: "))
        .unwrap_or_else(|| panic!("no atlas digest in output:\n{text}"))
        .to_string()
}

#[test]
fn atlas_is_byte_identical_across_thread_counts() {
    let dir = scratch("threads");
    let spec = toy_sweep(&dir);
    let spec = spec.to_str().unwrap();

    let mut canonical: Option<Vec<u8>> = None;
    let mut want_digest: Option<String> = None;
    for threads in ["1", "2", "4", "8"] {
        let out_dir = dir.join(format!("atlas-t{threads}"));
        let out = run(&[
            "sweep", spec,
            "--threads", threads,
            "--out", out_dir.to_str().unwrap(),
        ]);
        let text = stdout(&out);
        assert!(out.status.success(), "threads={threads}:\n{text}");
        let d = digest(&text);
        let bytes = std::fs::read(out_dir.join("atlas.canonical.json")).unwrap();
        match (&canonical, &want_digest) {
            (None, _) => {
                canonical = Some(bytes);
                want_digest = Some(d);
            }
            (Some(want), Some(wd)) => {
                assert_eq!(&d, wd, "digest diverged at threads={threads}");
                assert!(
                    bytes == *want,
                    "canonical atlas bytes diverged at threads={threads}"
                );
            }
            _ => unreachable!(),
        }
        // The full artefact set is written alongside the canonical file.
        assert!(out_dir.join("atlas.json").is_file());
        assert!(out_dir.join("contour.json").is_file());
    }
}

#[test]
fn atlas_survives_a_mid_sweep_kill_and_resume() {
    let dir = scratch("killresume");
    let spec = toy_sweep(&dir);
    let spec = spec.to_str().unwrap();
    let runs = dir.join("runs");
    let runs = runs.to_str().unwrap();

    // Reference: one uninterrupted run.
    let ref_dir = dir.join("atlas-ref");
    let reference = run(&["sweep", spec, "--threads", "2", "--out", ref_dir.to_str().unwrap()]);
    let ref_text = stdout(&reference);
    assert!(reference.status.success(), "{ref_text}");
    let want = std::fs::read(ref_dir.join("atlas.canonical.json")).unwrap();

    // Crash after 5 freshly solved cells: the process dies mid-sweep with
    // journal records for exactly the cells it finished.
    let crashed = run(&[
        "sweep", spec,
        "--threads", "2",
        "--run-id", "kr",
        "--runs-dir", runs,
        "--sweep-crash-after", "5",
    ]);
    assert_eq!(
        crashed.status.code(),
        Some(3),
        "crash-injected sweep must die with exit 3:\n{}",
        stdout(&crashed)
    );
    let journal = PathBuf::from(runs).join("kr").join("journal.jsonl");
    assert!(journal.is_file(), "crash left no journal behind");

    // Resume: replays the journaled cells, solves the rest, and lands on
    // byte-identical canonical output.
    let out_dir = dir.join("atlas-resumed");
    let resumed = run(&[
        "sweep", spec,
        "--threads", "2",
        "--resume", "kr",
        "--runs-dir", runs,
        "--out", out_dir.to_str().unwrap(),
    ]);
    let text = stdout(&resumed);
    assert!(resumed.status.success(), "{text}");
    assert_eq!(digest(&text), digest(&ref_text));
    let replay_line = text
        .lines()
        .find(|l| l.contains("cell(s) replayed"))
        .unwrap_or_else(|| panic!("no replay summary in output:\n{text}"));
    assert!(
        !replay_line.contains("journal: 0 cell(s) replayed"),
        "resume replayed nothing: {replay_line}"
    );
    let got = std::fs::read(out_dir.join("atlas.canonical.json")).unwrap();
    assert!(got == want, "resumed canonical atlas differs from reference");
}
