//! End-to-end tests of the `cppll serve` daemon through the real binary:
//! submission, certificate-cache hits, backpressure, quarantine, graceful
//! SIGTERM drain, and the chaos acceptance run — a third-order PLL job
//! whose worker is SIGKILLed mid-solve on a deterministic schedule and
//! must still land the pinned paper digest after resume.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Output, Stdio};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use cppll_serve::client_request;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_cppll")
}

/// A fresh scratch directory for one test, wiped before use.
fn scratch(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("cppll-serve-cli").join(test);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Writes the built-in example spec (from `cppll schema`) into `dir`.
fn toy_spec(dir: &Path) -> PathBuf {
    let out = Command::new(bin()).arg("schema").output().unwrap();
    assert!(out.status.success());
    let path = dir.join("toy.json");
    std::fs::write(&path, &out.stdout).unwrap();
    path
}

fn run(args: &[&str]) -> Output {
    Command::new(bin()).args(args).output().unwrap()
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// A daemon child process bound to an ephemeral port.
struct Daemon {
    child: Child,
    addr: String,
    log: Arc<Mutex<String>>,
}

impl Daemon {
    /// Starts `cppll serve --addr 127.0.0.1:0 --runs-dir <dir>/runs` plus
    /// `extra` flags and waits for the announced address.
    fn start(dir: &Path, extra: &[&str]) -> Daemon {
        let mut child = Command::new(bin())
            .arg("serve")
            .args(["--addr", "127.0.0.1:0"])
            .arg("--runs-dir")
            .arg(dir.join("runs"))
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .unwrap();
        let mut reader = BufReader::new(child.stdout.take().unwrap());
        let mut addr = None;
        let mut line = String::new();
        while reader.read_line(&mut line).unwrap() > 0 {
            if let Some(a) = line.trim().strip_prefix("serve: listening on ") {
                addr = Some(a.to_string());
                break;
            }
            line.clear();
        }
        let addr = addr.expect("daemon never announced its address");
        let log = Arc::new(Mutex::new(String::new()));
        {
            let log = Arc::clone(&log);
            std::thread::spawn(move || {
                let mut rest = String::new();
                let _ = reader.read_to_string(&mut rest);
                log.lock().unwrap().push_str(&rest);
            });
        }
        Daemon { child, addr, log }
    }

    /// SIGTERMs the daemon and asserts a clean (exit 0) drain.
    fn terminate_cleanly(mut self) -> String {
        let ok = Command::new("kill")
            .args(["-TERM", &self.child.id().to_string()])
            .status()
            .unwrap();
        assert!(ok.success(), "kill -TERM failed");
        let deadline = Instant::now() + Duration::from_secs(120);
        loop {
            match self.child.try_wait().unwrap() {
                Some(status) => {
                    assert!(status.success(), "daemon must drain and exit 0: {status:?}");
                    break;
                }
                None if Instant::now() > deadline => {
                    let _ = self.child.kill();
                    panic!("daemon did not drain within the deadline");
                }
                None => std::thread::sleep(Duration::from_millis(50)),
            }
        }
        std::thread::sleep(Duration::from_millis(100));
        self.log.lock().unwrap().clone()
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
    }
}

/// One raw HTTP exchange, returning the full response text (status line,
/// headers, body) — for assertions on headers like `Retry-After`.
fn raw_request(addr: &str, method: &str, path: &str, body: Option<&str>) -> String {
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let mut req = format!("{method} {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n");
    if let Some(b) = body {
        req.push_str(&format!("Content-Length: {}\r\n", b.len()));
    }
    req.push_str("\r\n");
    if let Some(b) = body {
        req.push_str(b);
    }
    s.write_all(req.as_bytes()).unwrap();
    let mut text = String::new();
    s.read_to_string(&mut text).unwrap();
    text
}

#[test]
fn submit_completes_and_identical_spec_hits_the_cache() {
    let dir = scratch("cache-hit");
    let spec = toy_spec(&dir);
    let spec = spec.to_str().unwrap();
    let daemon = Daemon::start(&dir, &["--workers", "1"]);

    let first = run(&["submit", spec, "--server", &daemon.addr, "--wait"]);
    let text = stdout(&first);
    assert!(first.status.success(), "{text}");
    assert!(text.contains("\"state\":\"completed\""), "{text}");
    assert!(text.contains("\"verified\":true"), "{text}");
    assert!(text.contains("\"cached\":false"), "{text}");
    let digest_of = |t: &str| {
        let i = t.find("\"digest\":\"").unwrap() + 10;
        t[i..i + 16].to_string()
    };
    let want = digest_of(&text);

    // Identical spec: answered from the certificate cache, fast, same
    // digest, no second worker run.
    let started = Instant::now();
    let second = run(&["submit", spec, "--server", &daemon.addr]);
    let hit = stdout(&second);
    assert!(second.status.success(), "{hit}");
    assert!(started.elapsed() < Duration::from_secs(1), "cache hits are fast");
    assert!(hit.contains("\"cached\":true"), "{hit}");
    assert_eq!(digest_of(&hit), want, "{hit}");

    let (_, metrics) = client_request(&daemon.addr, "GET", "/metrics", None).unwrap();
    assert!(metrics.contains("cppll_jobs_accepted_total 2"), "{metrics}");
    assert!(metrics.contains("cppll_cache_hits_total 1"), "{metrics}");

    let log = daemon.terminate_cleanly();
    assert!(log.contains("drained cleanly"), "{log}");
}

#[test]
fn saturated_queue_answers_429_with_retry_after() {
    let dir = scratch("backpressure");
    let spec = toy_spec(&dir);
    let spec_text = std::fs::read_to_string(&spec).unwrap();
    let body = format!(r#"{{"kind":"verify","spec":{spec_text}}}"#);
    // No workers and a 2-slot queue: the third submission must shed load.
    let daemon = Daemon::start(
        &dir,
        &["--workers", "0", "--queue-cap", "2", "--no-cache", "--retry-after", "7"],
    );

    let mut accepted = 0;
    let mut rejected = 0;
    for _ in 0..5 {
        let resp = raw_request(&daemon.addr, "POST", "/jobs", Some(&body));
        if resp.starts_with("HTTP/1.1 202") {
            accepted += 1;
        } else {
            assert!(resp.starts_with("HTTP/1.1 429"), "{resp}");
            assert!(resp.contains("Retry-After: 7\r\n"), "{resp}");
            rejected += 1;
        }
    }
    assert_eq!(accepted, 2, "exactly the queue capacity is admitted");
    assert_eq!(rejected, 3);

    // Nothing was lost: every accepted job is tracked.
    let (_, jobs) = client_request(&daemon.addr, "GET", "/jobs", None).unwrap();
    assert!(jobs.contains("\"inflight\":2"), "{jobs}");
    let (_, metrics) = client_request(&daemon.addr, "GET", "/metrics", None).unwrap();
    assert!(metrics.contains("cppll_jobs_accepted_total 2"), "{metrics}");
    assert!(metrics.contains("cppll_jobs_rejected_total 3"), "{metrics}");
}

#[test]
fn repeatedly_dying_spec_is_quarantined_and_drain_survives_it() {
    let dir = scratch("quarantine");
    let spec = toy_spec(&dir);
    let spec = spec.to_str().unwrap();
    // 1ms heartbeats, kill after the first one, no restart budget: the
    // worker is murdered long before the toy solve finishes, and one
    // exhaustion trips the threshold-1 breaker.
    let daemon = Daemon::start(
        &dir,
        &["--workers", "1", "--heartbeat", "1", "--breaker-threshold", "1"],
    );

    let failed = run(&[
        "submit", spec,
        "--server", &daemon.addr,
        "--wait",
        "--chaos-kill-after", "1",
        "--max-restarts", "0",
    ]);
    let text = stdout(&failed);
    assert!(!failed.status.success(), "{text}");
    assert!(text.contains("\"state\":\"failed\""), "{text}");
    assert!(text.contains("restart budget exhausted"), "{text}");

    // The fingerprint is now quarantined: same spec is refused up front.
    let refused = run(&["submit", spec, "--server", &daemon.addr]);
    let text = stdout(&refused);
    assert!(!refused.status.success(), "{text}");
    assert!(text.contains("quarantined"), "{text}");

    let (_, metrics) = client_request(&daemon.addr, "GET", "/metrics", None).unwrap();
    assert!(metrics.contains("cppll_jobs_quarantined_total 1"), "{metrics}");

    let log = daemon.terminate_cleanly();
    assert!(log.contains("drained cleanly"), "{log}");
}

#[test]
fn sigterm_drains_queued_jobs_before_exiting() {
    let dir = scratch("drain");
    let spec = toy_spec(&dir);
    let spec_text = std::fs::read_to_string(&spec).unwrap();
    let body = format!(r#"{{"kind":"verify","spec":{spec_text}}}"#);
    let daemon = Daemon::start(&dir, &["--workers", "1", "--no-cache"]);

    for _ in 0..3 {
        let resp = raw_request(&daemon.addr, "POST", "/jobs", Some(&body));
        assert!(resp.starts_with("HTTP/1.1 202"), "{resp}");
    }
    // SIGTERM with jobs still queued: the daemon must finish them, not
    // abandon them, and still exit 0.
    let log = daemon.terminate_cleanly();
    assert!(log.contains("drained cleanly"), "{log}");
    // All three runs journaled to completion on disk.
    let runs = dir.join("runs");
    for id in 1..=3 {
        assert!(
            runs.join(format!("job-{id}/journal.jsonl")).exists(),
            "job-{id} must have journaled before exit"
        );
    }
}

/// The issue's service acceptance criterion: a third-order CP PLL job whose
/// worker is SIGKILLed mid-solve on a deterministic chaos schedule (kill
/// after 4 heartbeats, doubling, journal tail chopped after each kill)
/// must resume from the journal and land the pinned paper digest, with
/// the resume visible in `/metrics`.
#[test]
fn pll_job_killed_mid_solve_resumes_to_the_pinned_digest() {
    let dir = scratch("pll-chaos");
    let daemon = Daemon::start(&dir, &["--workers", "1", "--heartbeat", "250"]);

    let out = run(&[
        "submit", "pll", "3", "4",
        "--server", &daemon.addr,
        "--wait",
        "--chaos-kill-after", "4",
        "--chaos-corrupt-tail", "20",
        "--max-restarts", "12",
    ]);
    let text = stdout(&out);
    assert!(out.status.success(), "{text}");
    assert!(text.contains("\"state\":\"completed\""), "{text}");
    assert!(text.contains("\"verified\":true"), "{text}");
    // Support-reduced compile digest; the unreduced c31e1167d4a9bf69 digest
    // remains pinned behind `--no-reduce`.
    assert!(
        text.contains("\"digest\":\"5b549b7bcc741218\""),
        "the pinned third-order PLL digest must survive the kill loop: {text}"
    );

    // The kill schedule guarantees at least one murder + resume.
    let restarts: u64 = text
        .split("\"restarts\":")
        .nth(1)
        .and_then(|s| s.split(&[',', '}'][..]).next())
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(0);
    assert!(restarts >= 1, "chaos must have killed the worker at least once: {text}");

    let (_, metrics) = client_request(&daemon.addr, "GET", "/metrics", None).unwrap();
    assert!(metrics.contains("cppll_jobs_resumed_total"), "{metrics}");
    assert!(metrics.contains("cppll_worker_restarts_total"), "{metrics}");

    let log = daemon.terminate_cleanly();
    assert!(log.contains("drained cleanly"), "{log}");
}

#[test]
fn runs_gc_applies_retention_and_respects_dry_run() {
    let dir = scratch("runs-gc");
    let runs = dir.join("runs");
    for name in ["job-1", "job-2", "job-3"] {
        std::fs::create_dir_all(runs.join(name)).unwrap();
        std::fs::write(runs.join(name).join("journal.jsonl"), "x\n").unwrap();
    }
    let dry = run(&[
        "runs", "gc",
        "--runs-dir", runs.to_str().unwrap(),
        "--gc-keep", "1",
        "--dry-run",
    ]);
    let text = stdout(&dry);
    assert!(dry.status.success(), "{text}");
    assert!(text.contains("(dry run)"), "{text}");
    assert!(text.contains("removed 2"), "{text}");
    assert!(runs.join("job-1").exists() && runs.join("job-3").exists());

    let real = run(&[
        "runs", "gc",
        "--runs-dir", runs.to_str().unwrap(),
        "--gc-keep", "1",
    ]);
    assert!(real.status.success());
    let survivors = std::fs::read_dir(&runs).unwrap().count();
    assert_eq!(survivors, 1, "keep-1 leaves exactly one run directory");

    // Without a policy the command refuses rather than silently no-ops.
    let none = run(&["runs", "gc", "--runs-dir", runs.to_str().unwrap()]);
    assert!(!none.status.success());
}
