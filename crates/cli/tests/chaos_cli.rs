//! End-to-end chaos tests of the `cppll` binary's `--isolate` supervisor:
//! a worker process that is murdered, stalled, or crash-injected at
//! deterministic points must still converge to the same result digest as an
//! unharmed run, courtesy of the self-healing run journal.

use std::path::PathBuf;
use std::process::{Command, Output};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_cppll")
}

/// A fresh scratch directory for one test, wiped before use.
fn scratch(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("cppll-chaos-cli").join(test);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Writes the built-in example spec (from `cppll schema`) into `dir`.
fn toy_spec(dir: &std::path::Path) -> PathBuf {
    let out = Command::new(bin()).arg("schema").output().unwrap();
    assert!(out.status.success());
    let path = dir.join("toy.json");
    std::fs::write(&path, &out.stdout).unwrap();
    path
}

fn run(args: &[&str]) -> Output {
    Command::new(bin()).args(args).output().unwrap()
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// Extracts the `result digest: <hex16>` line.
fn digest(text: &str) -> String {
    text.lines()
        .find_map(|l| l.strip_prefix("result digest: "))
        .unwrap_or_else(|| panic!("no result digest in output:\n{text}"))
        .to_string()
}

/// Extracts the `harness: ...` summary line.
fn harness_line(text: &str) -> String {
    text.lines()
        .find(|l| l.starts_with("harness: "))
        .unwrap_or_else(|| panic!("no harness summary in output:\n{text}"))
        .to_string()
}

#[test]
fn isolated_clean_run_matches_the_unsupervised_digest() {
    let dir = scratch("clean");
    let spec = toy_spec(&dir);
    let spec = spec.to_str().unwrap();

    let plain = run(&["verify", spec]);
    assert!(plain.status.success());
    let want = digest(&stdout(&plain));

    let runs = dir.join("runs");
    let isolated = run(&[
        "verify", spec,
        "--isolate",
        "--run-id", "clean",
        "--runs-dir", runs.to_str().unwrap(),
        "--heartbeat", "50",
    ]);
    let text = stdout(&isolated);
    assert!(isolated.status.success(), "{text}");
    assert_eq!(digest(&text), want);
    assert!(harness_line(&text).contains("worker exit 0"), "{text}");
}

#[test]
fn chaos_kill_loop_converges_to_the_unharmed_digest() {
    let dir = scratch("killloop");
    let spec = toy_spec(&dir);
    let spec = spec.to_str().unwrap();

    let plain = run(&["verify", spec]);
    let want = digest(&stdout(&plain));

    // Chaos kills from the very first heartbeat (threshold doubles after
    // every murder), the journal tail is vandalised after each kill, and an
    // injected exit(3) guarantees at least one abnormal exit even if the
    // tiny toy run outraces the first kill. The run must still converge.
    let runs = dir.join("runs");
    let out = run(&[
        "verify", spec,
        "--isolate",
        "--run-id", "chaos",
        "--runs-dir", runs.to_str().unwrap(),
        "--heartbeat", "25",
        "--chaos-kill-after", "1",
        "--chaos-corrupt-tail", "9",
        "--inject-crash", "advection:0",
        "--max-restarts", "15",
    ]);
    let text = stdout(&out);
    assert!(out.status.success(), "{text}");
    assert_eq!(digest(&text), want, "{text}");
    let summary = harness_line(&text);
    assert!(summary.contains("worker exit 0"), "{summary}");
    let restarts: usize = summary
        .split("after ")
        .nth(1)
        .and_then(|s| s.split(' ').next())
        .and_then(|s| s.parse().ok())
        .unwrap();
    assert!(restarts >= 1, "the injected crash forces a restart: {summary}");
}

#[test]
fn stalled_worker_is_killed_within_the_stall_timeout_and_replaced() {
    let dir = scratch("stall");
    let spec = toy_spec(&dir);
    let spec = spec.to_str().unwrap();

    let plain = run(&["verify", spec]);
    let want = digest(&stdout(&plain));

    // The worker hangs forever at its first Lyapunov solve while its
    // heartbeat thread keeps beating: only the journal-mtime stall detector
    // can catch it. The restart strips the injection and completes.
    let runs = dir.join("runs");
    let started = std::time::Instant::now();
    let out = run(&[
        "verify", spec,
        "--isolate",
        "--run-id", "stall",
        "--runs-dir", runs.to_str().unwrap(),
        "--heartbeat", "50",
        "--watchdog", "60",
        "--stall-timeout", "1",
        "--inject-stall", "lyapunov:0",
    ]);
    let elapsed = started.elapsed();
    let text = stdout(&out);
    assert!(out.status.success(), "{text}");
    assert!(
        elapsed < std::time::Duration::from_secs(30),
        "a hung worker must be detected within the stall window, took {elapsed:?}"
    );
    assert_eq!(digest(&text), want);
    let summary = harness_line(&text);
    assert!(summary.contains("stall"), "{summary}");
    assert!(summary.contains("worker exit 0"), "{summary}");
}

#[test]
fn validate_flag_reports_the_monte_carlo_block() {
    let dir = scratch("validate");
    let spec = toy_spec(&dir);
    let out = run(&["verify", spec.to_str().unwrap(), "--validate", "25"]);
    let text = stdout(&out);
    assert!(out.status.success(), "{text}");
    assert!(text.contains("validation (25 trials"), "{text}");
    assert!(text.contains("all certified claims held"), "{text}");
}

/// The issue's acceptance criterion: the third-order CP PLL verification,
/// murdered on a deterministic schedule with its journal tail vandalised
/// after every kill, still completes with the pinned paper digest.
#[test]
fn third_order_pll_kill_loop_completes_with_the_pinned_digest() {
    let runs = scratch("pll-killloop").join("runs");
    let out = run(&[
        "pll", "3", "4",
        "--isolate",
        "--run-id", "pll3",
        "--runs-dir", runs.to_str().unwrap(),
        "--heartbeat", "250",
        "--chaos-kill-after", "4",
        "--chaos-corrupt-tail", "20",
        "--max-restarts", "12",
    ]);
    let text = stdout(&out);
    assert!(out.status.success(), "{text}");
    // The default run compiles with support-driven multiplier bases; the
    // unreduced digest c31e1167d4a9bf69 is still pinned by the `--no-reduce`
    // CI reduction-smoke path.
    assert_eq!(
        digest(&text),
        "5b549b7bcc741218",
        "the pinned third-order PLL digest must survive the kill loop: {text}"
    );
    assert!(harness_line(&text).contains("worker exit 0"), "{text}");
}
