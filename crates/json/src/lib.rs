//! Dependency-free JSON for the cppll stack.
//!
//! The build environment has no registry access, so `serde`/`serde_json`
//! are unavailable; this crate supplies the small surface the stack needs:
//! a [`Value`] tree, a strict recursive-descent [`parse`] function with
//! line/column errors, compact and pretty writers, and a [`ToJson`] trait
//! for the benchmark artefacts written under `target/experiments/`.
//!
//! Object key order is preserved (insertion order), so serialised artefacts
//! are stable across runs and diffable.

use std::fmt::Write as _;

/// A JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on objects; `None` for absent keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// The number as a `u64`, when it is a nonnegative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= u64::MAX as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(members) => Some(members),
            _ => None,
        }
    }

    /// Compact single-line rendering.
    pub fn to_compact_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation.
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Number(x) => write_number(out, *x),
            Value::String(s) => write_string(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Value::Object(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, x: f64) {
    if x.is_nan() || x.is_infinite() {
        // JSON has no non-finite numbers; serialise as null like serde_json
        // would reject — null keeps artefacts loadable.
        out.push_str("null");
    } else if x == 0.0 {
        // The integer fast path below would collapse -0.0 to "0"; keeping
        // the sign preserves bit-exact f64 round-trips ("-0" parses back
        // to -0.0).
        out.push_str(if x.is_sign_negative() { "-0" } else { "0" });
    } else if x.fract() == 0.0 && x.abs() < 1e15 {
        let _ = write!(out, "{}", x as i64);
    } else {
        let _ = write!(out, "{x}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure, with 1-based line and column.
#[derive(Debug, Clone)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// 1-based line of the offending byte.
    pub line: usize,
    /// 1-based column of the offending byte.
    pub column: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} at line {} column {}",
            self.message, self.line, self.column
        )
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document (trailing whitespace allowed, nothing
/// else after the top-level value).
///
/// # Errors
///
/// [`JsonError`] with position information on malformed input.
pub fn parse(text: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: impl Into<String>) -> JsonError {
        let mut line = 1;
        let mut column = 1;
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                column = 1;
            } else {
                column += 1;
            }
        }
        JsonError {
            message: message.into(),
            line,
            column,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.error("unexpected character")),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected '{word}'")))
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b't') => s.push('\t'),
                        Some(b'r') => s.push('\r'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let cp = self.unicode_escape()?;
                            s.push(cp);
                            continue;
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // bytes are valid UTF-8; copy the full sequence).
                    let start = self.pos;
                    self.pos += 1;
                    while self.peek().is_some_and(|b| (b & 0xC0) == 0x80) {
                        self.pos += 1;
                    }
                    s.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        // self.pos is at the 'u'.
        let hex4 = |p: &mut Self| -> Result<u32, JsonError> {
            p.pos += 1; // consume 'u'
            if p.pos + 4 > p.bytes.len() {
                return Err(p.error("truncated \\u escape"));
            }
            let s = std::str::from_utf8(&p.bytes[p.pos..p.pos + 4])
                .map_err(|_| p.error("invalid \\u escape"))?;
            let v = u32::from_str_radix(s, 16).map_err(|_| p.error("invalid \\u escape"))?;
            p.pos += 4;
            Ok(v)
        };
        let first = hex4(self)?;
        // Surrogate pair?
        if (0xD800..0xDC00).contains(&first) {
            if self.peek() == Some(b'\\') && self.bytes.get(self.pos + 1) == Some(&b'u') {
                self.pos += 1; // consume '\'
                let second = hex4(self)?;
                if (0xDC00..0xE000).contains(&second) {
                    let cp = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                    return char::from_u32(cp).ok_or_else(|| self.error("invalid surrogate pair"));
                }
            }
            return Err(self.error("unpaired surrogate in \\u escape"));
        }
        char::from_u32(first).ok_or_else(|| self.error("invalid \\u escape"))
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.error("invalid number"))
    }
}

/// Conversion into a [`Value`] — the stack's replacement for
/// `serde::Serialize` on artefact types.
pub trait ToJson {
    /// Builds the JSON representation.
    fn to_json(&self) -> Value;
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Value {
        Value::Number(*self)
    }
}

impl ToJson for u32 {
    fn to_json(&self) -> Value {
        Value::Number(f64::from(*self))
    }
}

impl ToJson for u64 {
    fn to_json(&self) -> Value {
        Value::Number(*self as f64)
    }
}

impl ToJson for usize {
    fn to_json(&self) -> Value {
        Value::Number(*self as f64)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::String(self.clone())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(v) => v.to_json(),
            None => Value::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Value {
        Value::Array(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

/// A typed-decoding failure: the document parsed as JSON but does not have
/// the shape (or numeric range) the target type requires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// What is wrong, naming the offending field where possible.
    pub message: String,
}

impl DecodeError {
    /// Creates an error from a message.
    pub fn new(message: impl Into<String>) -> Self {
        DecodeError {
            message: message.into(),
        }
    }

    /// Prefixes the message with a field path segment (`ctx: message`).
    #[must_use]
    pub fn in_field(self, ctx: &str) -> Self {
        DecodeError {
            message: format!("{ctx}: {}", self.message),
        }
    }
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DecodeError {}

/// Conversion from a [`Value`] — the strict counterpart of [`ToJson`] used
/// by the checkpoint journal. Decoders reject missing fields, mistyped
/// values and non-finite numbers (which serialise as `null`) instead of
/// defaulting them.
pub trait FromJson: Sized {
    /// Decodes the value.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] naming the first field that does not decode.
    fn from_json(v: &Value) -> Result<Self, DecodeError>;
}

/// Strict accessors shared by [`FromJson`] implementations.
pub mod decode {
    use super::{DecodeError, FromJson, Value};

    /// Looks up a required object member.
    ///
    /// # Errors
    ///
    /// When `v` is not an object or lacks `key`.
    pub fn field<'a>(v: &'a Value, key: &str) -> Result<&'a Value, DecodeError> {
        v.get(key)
            .ok_or_else(|| DecodeError::new(format!("missing field '{key}'")))
    }

    /// Decodes a required object member into `T`.
    ///
    /// # Errors
    ///
    /// When the member is absent or does not decode; the error names `key`.
    pub fn required<T: FromJson>(v: &Value, key: &str) -> Result<T, DecodeError> {
        T::from_json(field(v, key)?).map_err(|e| e.in_field(key))
    }

    /// Decodes an optional object member into `T`: `Ok(None)` when the key
    /// is absent, an error (naming the field) when it is present but
    /// malformed. For fields added after data files already exist in the
    /// wild — absence means "the writer predates the field", not damage.
    ///
    /// # Errors
    ///
    /// Decode errors of `T`, tagged with the field name.
    pub fn optional<T: FromJson>(v: &Value, key: &str) -> Result<Option<T>, DecodeError> {
        match v.get(key) {
            Some(inner) => T::from_json(inner).map(Some).map_err(|e| e.in_field(key)),
            None => Ok(None),
        }
    }

    /// A finite number. `null` (how NaN/Inf serialise) and non-numbers are
    /// rejected, as are numbers that parsed to NaN or ±Inf (e.g. `1e999`).
    ///
    /// # Errors
    ///
    /// When the value is not a finite JSON number.
    pub fn finite_f64(v: &Value) -> Result<f64, DecodeError> {
        match v.as_f64() {
            Some(x) if x.is_finite() => Ok(x),
            Some(_) => Err(DecodeError::new("expected a finite number")),
            None => Err(DecodeError::new("expected a number")),
        }
    }

    /// A nonnegative integer.
    ///
    /// # Errors
    ///
    /// When the value is not a nonnegative integral number.
    pub fn uint(v: &Value) -> Result<u64, DecodeError> {
        v.as_u64()
            .ok_or_else(|| DecodeError::new("expected a nonnegative integer"))
    }

    /// A string.
    ///
    /// # Errors
    ///
    /// When the value is not a string.
    pub fn string(v: &Value) -> Result<&str, DecodeError> {
        v.as_str()
            .ok_or_else(|| DecodeError::new("expected a string"))
    }

    /// An array's elements.
    ///
    /// # Errors
    ///
    /// When the value is not an array.
    pub fn array(v: &Value) -> Result<&[Value], DecodeError> {
        v.as_array()
            .ok_or_else(|| DecodeError::new("expected an array"))
    }

    /// Decodes every element of an array; errors name the failing index.
    ///
    /// # Errors
    ///
    /// When the value is not an array or any element does not decode.
    pub fn vec_of<T: FromJson>(v: &Value) -> Result<Vec<T>, DecodeError> {
        array(v)?
            .iter()
            .enumerate()
            .map(|(i, item)| T::from_json(item).map_err(|e| e.in_field(&format!("[{i}]"))))
            .collect()
    }
}

impl FromJson for Value {
    fn from_json(v: &Value) -> Result<Self, DecodeError> {
        Ok(v.clone())
    }
}

impl FromJson for bool {
    fn from_json(v: &Value) -> Result<Self, DecodeError> {
        v.as_bool()
            .ok_or_else(|| DecodeError::new("expected a boolean"))
    }
}

impl FromJson for f64 {
    fn from_json(v: &Value) -> Result<Self, DecodeError> {
        decode::finite_f64(v)
    }
}

impl FromJson for u32 {
    fn from_json(v: &Value) -> Result<Self, DecodeError> {
        u32::try_from(decode::uint(v)?).map_err(|_| DecodeError::new("integer out of range"))
    }
}

impl FromJson for u64 {
    fn from_json(v: &Value) -> Result<Self, DecodeError> {
        decode::uint(v)
    }
}

impl FromJson for usize {
    fn from_json(v: &Value) -> Result<Self, DecodeError> {
        usize::try_from(decode::uint(v)?).map_err(|_| DecodeError::new("integer out of range"))
    }
}

impl FromJson for String {
    fn from_json(v: &Value) -> Result<Self, DecodeError> {
        decode::string(v).map(str::to_string)
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Value) -> Result<Self, DecodeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Value) -> Result<Self, DecodeError> {
        decode::vec_of(v)
    }
}

/// Builder for object values in field order.
#[derive(Debug, Default, Clone)]
pub struct ObjectBuilder {
    members: Vec<(String, Value)>,
}

impl ObjectBuilder {
    /// An empty object.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one member.
    #[must_use]
    pub fn field(mut self, key: &str, value: impl ToJson) -> Self {
        self.members.push((key.to_string(), value.to_json()));
        self
    }

    /// Finishes the object.
    pub fn build(self) -> Value {
        Value::Object(self.members)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_document() {
        let text = r#"{"a": [1, 2.5, -3e2], "b": {"c": true, "d": null}, "e": "x\n\"y\""}"#;
        let v = parse(text).expect("parses");
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Value::Null));
        assert_eq!(v.get("e").unwrap().as_str(), Some("x\n\"y\""));
        let back = parse(&v.to_compact_string()).expect("reparses");
        assert_eq!(back, v);
        let pretty = parse(&v.to_pretty_string()).expect("reparses pretty");
        assert_eq!(pretty, v);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "1.2.3",
            "\"unterminated",
            "{} x",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} must not parse");
        }
        let err = parse("{\n  \"a\": !\n}").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.column >= 8, "column = {}", err.column);
    }

    #[test]
    fn unicode_escapes() {
        let v = parse(r#""é😀""#).expect("parses");
        assert_eq!(v.as_str(), Some("é😀"));
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Value::Number(3.0).to_compact_string(), "3");
        assert_eq!(Value::Number(3.5).to_compact_string(), "3.5");
        assert_eq!(Value::Number(f64::NAN).to_compact_string(), "null");
    }

    #[test]
    fn negative_zero_keeps_its_sign() {
        assert_eq!(Value::Number(-0.0).to_compact_string(), "-0");
        assert_eq!(Value::Number(0.0).to_compact_string(), "0");
        let back = parse("-0").unwrap().as_f64().unwrap();
        assert!(back == 0.0 && back.is_sign_negative());
    }

    #[test]
    fn f64_round_trips_bit_exactly() {
        for x in [
            0.0,
            -0.0,
            1.5,
            -2.75e-3,
            1e300,
            5e-324,
            f64::MIN_POSITIVE,
            std::f64::consts::PI,
            -1234567890123456.0,
        ] {
            let text = Value::Number(x).to_compact_string();
            let back = parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} via {text}");
        }
    }

    #[test]
    fn from_json_decodes_and_rejects() {
        assert_eq!(f64::from_json(&Value::Number(2.5)), Ok(2.5));
        assert!(f64::from_json(&Value::Null).is_err());
        assert!(f64::from_json(&Value::Number(f64::NAN)).is_err());
        assert!(f64::from_json(&Value::Number(f64::INFINITY)).is_err());
        // Overflowing exponents parse to ±Inf and must be rejected too.
        let huge = parse("1e999").unwrap();
        assert!(f64::from_json(&huge).is_err());
        assert_eq!(u32::from_json(&Value::Number(7.0)), Ok(7));
        assert!(u32::from_json(&Value::Number(-1.0)).is_err());
        assert!(u32::from_json(&Value::Number(1e12)).is_err());
        assert_eq!(
            Vec::<f64>::from_json(&parse("[1, 2, 3]").unwrap()),
            Ok(vec![1.0, 2.0, 3.0])
        );
        let err = Vec::<f64>::from_json(&parse("[1, null]").unwrap()).unwrap_err();
        assert!(err.message.contains("[1]"), "{err}");
        assert_eq!(Option::<f64>::from_json(&Value::Null), Ok(None));
        let obj = parse(r#"{"a": 3}"#).unwrap();
        assert_eq!(decode::required::<f64>(&obj, "a"), Ok(3.0));
        let missing = decode::required::<f64>(&obj, "b").unwrap_err();
        assert!(missing.message.contains("'b'"), "{missing}");
    }

    #[test]
    fn object_builder_keeps_order() {
        let v = ObjectBuilder::new()
            .field("z", 1.0)
            .field("a", "s")
            .field("opt", Option::<f64>::None)
            .build();
        assert_eq!(v.to_compact_string(), r#"{"z":1,"a":"s","opt":null}"#);
    }
}
