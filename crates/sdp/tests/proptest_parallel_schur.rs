//! Property-based tests for the parallel Schur-complement assembly and the
//! solver's determinism across thread counts.
//!
//! The parallel layer's contract (see `cppll-par`) is that work items are
//! pure functions of their index and all reductions happen serially in fixed
//! order, so `--threads 1` and `--threads N` must produce bit-identical
//! results — not merely close ones. These tests pin that, plus agreement of
//! the sparse-aware assembly with a dense O(m²n³) reference to 1e-12.

use cppll_linalg::Matrix;
use cppll_sdp::{
    assemble_schur_dense_for_tests, assemble_schur_for_tests, SdpProblem, SolverOptions, SymSparse,
};
use proptest::prelude::*;

/// Random two-block SDP skeleton plus dense mirrors of its constraint
/// matrices, built from flat seed pools (the vendored proptest stub has no
/// flat_map, so sizes come in as separate draws and index into the pools).
struct RandomSchur {
    p: SdpProblem,
    /// `dense[i][j]` = dense symmetric `A_{ij}` (zero matrix when absent).
    dense: Vec<Vec<Matrix>>,
    dims: Vec<usize>,
    m: usize,
}

fn build_random(dims: &[usize], m: usize, pool: &[f64]) -> RandomSchur {
    build_random_thresh(dims, m, pool, 0.5)
}

/// Like [`build_random`] but keeping only pool draws with `|v| >= thresh`,
/// so high thresholds produce very sparse constraints — empty constraint
/// blocks, sparse supports, late first nonzero rows.
fn build_random_thresh(dims: &[usize], m: usize, pool: &[f64], thresh: f64) -> RandomSchur {
    let mut p = SdpProblem::new();
    let blocks: Vec<_> = dims.iter().map(|&n| p.add_psd_block(n)).collect();
    for bj in &blocks {
        p.set_block_cost_identity(*bj, 1.0);
    }
    let mut dense = vec![Vec::new(); m];
    let mut cursor = 0usize;
    let mut next = || {
        let v = pool[cursor % pool.len()];
        cursor += 1;
        v
    };
    for (i, row) in dense.iter_mut().enumerate() {
        let c = p.add_constraint(1.0 + i as f64);
        for (j, &n) in dims.iter().enumerate() {
            let mut a = Matrix::zeros(n, n);
            // ~half the upper-triangle entries, mirroring SymSparse::add.
            for r in 0..n {
                for s in r..n {
                    let v = next();
                    if v.abs() < thresh {
                        continue;
                    }
                    p.set_entry(c, blocks[j], r, s, v);
                    a[(r, s)] += v;
                    if r != s {
                        a[(s, r)] += v;
                    }
                }
            }
            row.push(a);
        }
    }
    RandomSchur {
        p,
        dense,
        dims: dims.to_vec(),
        m,
    }
}

/// An SPD matrix `B Bᵀ + n·I` drawn from a flat pool at `offset`.
fn spd(n: usize, pool: &[f64], offset: usize) -> Matrix {
    let data: Vec<f64> = (0..n * n)
        .map(|k| pool[(offset + k) % pool.len()])
        .collect();
    let b = Matrix::from_col_major(n, n, data);
    let mut a = b.matmul(&b.transpose());
    for i in 0..n {
        a[(i, i)] += n as f64;
    }
    a
}

/// Dense reference: `M_{ik} = Σⱼ tr(A_{ij} · Sⱼ⁻¹ A_{kj} Xⱼ)`.
fn dense_schur(rs: &RandomSchur, x: &[Matrix], s_inv: &[Matrix]) -> Matrix {
    let mut out = Matrix::zeros(rs.m, rs.m);
    for i in 0..rs.m {
        for k in 0..rs.m {
            let mut acc = 0.0;
            for j in 0..rs.dims.len() {
                let t = s_inv[j].matmul(&rs.dense[k][j]).matmul(&x[j]);
                acc += rs.dense[i][j].matmul(&t).trace();
            }
            out[(i, k)] = acc;
        }
    }
    out
}

fn bits_equal(a: &Matrix, b: &Matrix) -> bool {
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .all(|(x, y)| x.to_bits() == y.to_bits())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn parallel_schur_matches_dense_reference(
        pool in prop::collection::vec(-1.0f64..1.0, 256),
        spd_pool in prop::collection::vec(-1.0f64..1.0, 128),
        n1 in 2usize..6,
        n2 in 1usize..5,
        m in 1usize..7,
    ) {
        let dims = [n1, n2];
        let rs = build_random(&dims, m, &pool);
        let x: Vec<Matrix> = dims.iter().enumerate()
            .map(|(j, &n)| spd(n, &spd_pool, 17 * j)).collect();
        let s: Vec<Matrix> = dims.iter().enumerate()
            .map(|(j, &n)| spd(n, &spd_pool, 31 * j + 7)).collect();
        let s_inv: Vec<Matrix> = s.iter().map(|sj| sj.cholesky().unwrap().inverse()).collect();

        let got = assemble_schur_for_tests(&rs.p, &x, &s, 1);
        let want = dense_schur(&rs, &x, &s_inv);
        let scale = want.norm().max(1.0);
        for i in 0..m {
            for k in 0..m {
                prop_assert!((got[(i, k)] - want[(i, k)]).abs() <= 1e-12 * scale,
                    "M[{i}][{k}]: got {} want {}", got[(i, k)], want[(i, k)]);
            }
        }
        // The assembled Schur complement of an SPD-iterate SDP is symmetric.
        for i in 0..m {
            for k in 0..m {
                prop_assert!((got[(i, k)] - got[(k, i)]).abs() <= 1e-10 * scale);
            }
        }
    }

    #[test]
    fn parallel_schur_bit_identical_across_threads(
        pool in prop::collection::vec(-1.0f64..1.0, 256),
        spd_pool in prop::collection::vec(-1.0f64..1.0, 128),
        n1 in 2usize..7,
        m in 2usize..9,
    ) {
        let dims = [n1, 3];
        let rs = build_random(&dims, m, &pool);
        let x: Vec<Matrix> = dims.iter().enumerate()
            .map(|(j, &n)| spd(n, &spd_pool, 5 * j)).collect();
        let s: Vec<Matrix> = dims.iter().enumerate()
            .map(|(j, &n)| spd(n, &spd_pool, 13 * j + 3)).collect();
        let serial = assemble_schur_for_tests(&rs.p, &x, &s, 1);
        for threads in [2usize, 3, 5, 8] {
            let par = assemble_schur_for_tests(&rs.p, &x, &s, threads);
            prop_assert!(bits_equal(&serial, &par),
                "Schur assembly differs between 1 and {threads} threads");
        }
    }

    #[test]
    fn sparse_schur_bit_identical_to_dense_reference(
        pool in prop::collection::vec(-1.0f64..1.0, 256),
        spd_pool in prop::collection::vec(-1.0f64..1.0, 128),
        n1 in 2usize..7,
        n2 in 1usize..6,
        m in 1usize..9,
        // Sweep sparsity from ~half-dense to nearly-empty constraints: the
        // symbolic analysis must stay value-neutral at every density.
        thresh in 0.3f64..0.95,
    ) {
        let dims = [n1, n2];
        let rs = build_random_thresh(&dims, m, &pool, thresh);
        let x: Vec<Matrix> = dims.iter().enumerate()
            .map(|(j, &n)| spd(n, &spd_pool, 17 * j)).collect();
        let s: Vec<Matrix> = dims.iter().enumerate()
            .map(|(j, &n)| spd(n, &spd_pool, 31 * j + 7)).collect();
        // The pre-sparsity assembly (full products, full-column solves) is
        // the oracle: the sparse path must reproduce it bit for bit at
        // every thread count, not merely to tolerance.
        let want = assemble_schur_dense_for_tests(&rs.p, &x, &s, 1);
        for threads in [1usize, 2, 4, 8] {
            let got = assemble_schur_for_tests(&rs.p, &x, &s, threads);
            prop_assert!(bits_equal(&got, &want),
                "sparse assembly differs from dense reference at {threads} threads (thresh {thresh})");
        }
    }

    #[test]
    fn full_solve_bit_identical_across_threads(
        diag in prop::collection::vec(0.5f64..2.0, 4),
        off in -0.2f64..0.2,
    ) {
        // min tr X s.t. X_kk = diag[k], X_01 = off — feasible and strictly
        // interior for small |off|.
        let build = || {
            let mut p = SdpProblem::new();
            let b = p.add_psd_block(4);
            p.set_block_cost_identity(b, 1.0);
            for (k, &d) in diag.iter().enumerate() {
                let c = p.add_constraint(d);
                p.set_entry(c, b, k, k, 1.0);
            }
            let c = p.add_constraint(off);
            p.set_entry(c, b, 0, 1, 1.0);
            p
        };
        let solve = |threads: usize| {
            let opts = SolverOptions { threads, ..SolverOptions::default() };
            build().solve(&opts)
        };
        let base = solve(1);
        prop_assert!(base.is_ok(), "baseline solve failed: {base}");
        for threads in [2usize, 4] {
            let sol = solve(threads);
            prop_assert_eq!(sol.status, base.status);
            prop_assert_eq!(sol.iterations, base.iterations);
            prop_assert_eq!(sol.primal_objective.to_bits(), base.primal_objective.to_bits());
            prop_assert_eq!(sol.dual_objective.to_bits(), base.dual_objective.to_bits());
            for (a, b) in sol.y.iter().zip(&base.y) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
            for (xa, xb) in sol.x.iter().zip(&base.x) {
                prop_assert!(bits_equal(xa, xb), "X differs at {threads} threads");
            }
        }
    }
}

/// The un-exercised `SymSparse` import above is deliberate — keep a direct
/// compile-time check that `dot_general` is part of the public surface the
/// Schur assembly relies on.
#[test]
fn dot_general_is_public_and_symmetric_consistent() {
    let mut a = SymSparse::new(2);
    a.add(0, 1, 2.0);
    a.normalize();
    let t = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
    // tr(A·T) = Σ A_rc T_cr = 2·(T_10 + T_01) = 2·5.
    assert!((a.dot_general(&t) - 10.0).abs() < 1e-14);
}
