//! Property-based tests: randomly generated *feasible* SDPs must be solved
//! with small residuals, weak duality must hold, and the returned PSD blocks
//! must actually be PSD.

use cppll_sdp::{SdpProblem, SolverOptions};
use proptest::prelude::*;

/// Builds a random feasible SDP:
/// pick `X₀ = G Gᵀ + I ≻ 0`, random sparse `Aᵢ`, set `bᵢ = ⟨Aᵢ, X₀⟩`.
fn random_feasible(
    n: usize,
    m: usize,
    seed_g: Vec<f64>,
    seed_a: Vec<f64>,
) -> (SdpProblem, Vec<f64>) {
    let mut p = SdpProblem::new();
    let blk = p.add_psd_block(n);
    p.set_block_cost_identity(blk, 1.0);
    // X0 = G Gᵀ + I
    let mut x0 = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in 0..n {
            let mut acc = if i == j { 1.0 } else { 0.0 };
            for k in 0..n {
                acc += seed_g[i * n + k] * seed_g[j * n + k];
            }
            x0[i][j] = acc;
        }
    }
    let mut b = Vec::with_capacity(m);
    for i in 0..m {
        let c = p.add_constraint(0.0);
        let mut rhs = 0.0;
        for r in 0..n {
            for s in r..n {
                let v = seed_a[(i * n * n + r * n + s) % seed_a.len()];
                // Sparsify: keep ~half of the entries.
                if v.abs() < 0.5 {
                    continue;
                }
                p.set_entry(c, blk, r, s, v);
                rhs += if r == s {
                    v * x0[r][s]
                } else {
                    2.0 * v * x0[r][s]
                };
            }
        }
        // Overwrite the rhs by re-adding the constraint value.
        b.push(rhs);
    }
    // Fix up rhs values (add_constraint took 0.0 placeholders).
    let mut p2 = SdpProblem::new();
    let blk2 = p2.add_psd_block(n);
    p2.set_block_cost_identity(blk2, 1.0);
    for i in 0..m {
        let c = p2.add_constraint(b[i]);
        for r in 0..n {
            for s in r..n {
                let v = seed_a[(i * n * n + r * n + s) % seed_a.len()];
                if v.abs() < 0.5 {
                    continue;
                }
                p2.set_entry(c, blk2, r, s, v);
            }
        }
    }
    (p2, b)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_feasible_sdps_solve(
        seed_g in prop::collection::vec(-1.0f64..1.0, 16),
        seed_a in prop::collection::vec(-1.0f64..1.0, 64),
    ) {
        let n = 4;
        let m = 3;
        let (p, _b) = random_feasible(n, m, seed_g, seed_a);
        let sol = p.solve(&SolverOptions::default());
        prop_assert!(sol.is_ok(), "solver failed: {sol}");
        // Residual feasibility of returned point.
        prop_assert!(sol.primal_infeasibility < 1e-5, "{sol}");
        // Weak duality (within tolerance).
        prop_assert!(sol.primal_objective >= sol.dual_objective - 1e-4 * (1.0 + sol.primal_objective.abs()),
            "weak duality violated: {sol}");
        // Returned block is PSD (up to numerical floor).
        let eig = sol.x[0].symmetric_eigen();
        prop_assert!(eig.min_eigenvalue() > -1e-7, "X not PSD: {}", eig.min_eigenvalue());
        let eigs = sol.s[0].symmetric_eigen();
        prop_assert!(eigs.min_eigenvalue() > -1e-7, "S not PSD: {}", eigs.min_eigenvalue());
    }
}

#[test]
fn larger_block_and_many_constraints() {
    // Deterministic medium-size instance: n = 12, m = 30.
    let n = 12;
    let m = 30;
    let mut seed_g = Vec::with_capacity(n * n);
    let mut state = 0x9e3779b97f4a7c15u64;
    let mut rng = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
    };
    for _ in 0..n * n {
        seed_g.push(rng());
    }
    let mut seed_a = Vec::with_capacity(1024);
    for _ in 0..1024 {
        seed_a.push(rng());
    }
    let (p, _) = random_feasible(n, m, seed_g, seed_a);
    let sol = p.solve(&SolverOptions::default());
    assert!(sol.is_ok(), "{sol}");
    assert!(sol.primal_infeasibility < 1e-5, "{sol}");
}

// Re-exercise the generator through the public API only.
fn random_feasible_public(n: usize, m: usize, seed_g: Vec<f64>, seed_a: Vec<f64>) -> SdpProblem {
    random_feasible(n, m, seed_g, seed_a).0
}

#[test]
fn free_vars_combined_with_random_block() {
    let n = 3;
    let seed_g = vec![0.3; n * n];
    let seed_a = vec![0.7; 64];
    let mut p = random_feasible_public(n, 2, seed_g, seed_a);
    // Add a free variable tying two fresh constraints together.
    let u = p.add_free_var(0.0);
    let c = p.add_constraint(1.0);
    p.set_free_coeff(c, u, 1.0);
    let sol = p.solve(&SolverOptions::default());
    assert!(sol.is_ok(), "{sol}");
    assert!((sol.free[0] - 1.0).abs() < 1e-5, "u = {}", sol.free[0]);
}
