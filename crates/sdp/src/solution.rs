//! Solver results.

use cppll_linalg::Matrix;

/// Termination status of the interior-point method.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SdpStatus {
    /// All tolerances met: the returned point is optimal to the requested
    /// accuracy.
    Optimal,
    /// Feasibility tolerances met but the duality gap is only near the
    /// target (useful for warm feasibility answers).
    NearOptimal,
    /// Iteration limit reached before convergence.
    MaxIterations,
    /// Step lengths collapsed; the problem is likely ill-conditioned or
    /// weakly infeasible.
    Stalled,
    /// Heuristic primal-infeasibility certificate: the dual objective grew
    /// unboundedly along a direction with vanishing dual residuals.
    PrimalInfeasibleLikely,
    /// Heuristic dual-infeasibility certificate (primal unbounded).
    DualInfeasibleLikely,
    /// The cooperative wall-clock deadline expired before convergence.
    DeadlineExceeded,
}

impl SdpStatus {
    /// `true` when the returned primal point can be trusted as (near-)optimal.
    pub fn is_ok(self) -> bool {
        matches!(self, SdpStatus::Optimal | SdpStatus::NearOptimal)
    }

    /// `true` when a re-solve with different numerical parameters (more
    /// regularisation, rescaled data, a different step fraction) has a
    /// realistic chance of succeeding.
    ///
    /// Infeasibility verdicts are properties of the problem, not the solve,
    /// and an expired deadline will only expire again — neither is
    /// retryable.
    pub fn is_retryable(self) -> bool {
        matches!(self, SdpStatus::Stalled | SdpStatus::MaxIterations)
    }
}

impl std::fmt::Display for SdpStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SdpStatus::Optimal => "optimal",
            SdpStatus::NearOptimal => "near optimal",
            SdpStatus::MaxIterations => "iteration limit reached",
            SdpStatus::Stalled => "stalled",
            SdpStatus::PrimalInfeasibleLikely => "primal infeasible (heuristic)",
            SdpStatus::DualInfeasibleLikely => "dual infeasible (heuristic)",
            SdpStatus::DeadlineExceeded => "deadline exceeded",
        };
        f.write_str(s)
    }
}

/// Per-stage wall-clock totals, in seconds, accumulated across every
/// iteration of one solve.
///
/// Purely diagnostic: timings never influence solver decisions and never
/// enter the deterministic attempt logs — they answer "where does the time
/// go" in benchmark output and CLI reports.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SolveTimings {
    /// Problem-size reduction before the solve (Newton-polytope basis
    /// pruning and sign-symmetry block splitting). The solver itself never
    /// writes this stage; the SOS compiler above it does. Zero when
    /// reduction is disabled — reported explicitly, never hidden.
    pub reduction: f64,
    /// Residual and convergence-metric evaluation.
    pub residuals: f64,
    /// One-off symbolic analysis of the Schur/KKT sparsity (constraint
    /// supports, active columns, interacting-pair structure) performed once
    /// per solve before the iteration loop.
    pub schur_symbolic: f64,
    /// Per-block Cholesky factorisations of `Xⱼ`, `Sⱼ` and `Sⱼ⁻¹`.
    pub factorizations: f64,
    /// Schur-complement assembly (the `T = S⁻¹AX` solves and pair products).
    pub schur_assembly: f64,
    /// LDLᵀ factorisation of the KKT system.
    pub kkt_factor: f64,
    /// Newton direction computation (KKT solves plus block recovery).
    pub kkt_solve: f64,
    /// Fraction-to-boundary line searches (eigenvalue computations).
    pub line_search: f64,
    /// End-to-end wall clock of the solve call.
    pub total: f64,
    /// Count of structurally-zero Schur entries `M_{ik}` (constraint pairs
    /// sharing no PSD block) that the sparse assembly never evaluates, per
    /// assembly pass. Not a timing, but it lives here because it is the
    /// denominator-free "where did the win come from" statistic reported
    /// alongside the stage clocks.
    pub schur_pairs_skipped: u64,
}

impl SolveTimings {
    /// Accumulates another solve's stage totals into this one (used to
    /// aggregate timings across supervised retry attempts and across
    /// pipeline stages).
    pub fn accumulate(&mut self, other: &SolveTimings) {
        self.reduction += other.reduction;
        self.residuals += other.residuals;
        self.schur_symbolic += other.schur_symbolic;
        self.factorizations += other.factorizations;
        self.schur_assembly += other.schur_assembly;
        self.kkt_factor += other.kkt_factor;
        self.kkt_solve += other.kkt_solve;
        self.line_search += other.line_search;
        self.total += other.total;
        self.schur_pairs_skipped += other.schur_pairs_skipped;
    }

    /// Stage names and totals in reporting order, excluding `total`.
    pub fn stages(&self) -> [(&'static str, f64); 8] {
        [
            ("reduction", self.reduction),
            ("residuals", self.residuals),
            ("factorizations", self.factorizations),
            ("schur_symbolic", self.schur_symbolic),
            ("schur_assembly", self.schur_assembly),
            ("kkt_factor", self.kkt_factor),
            ("kkt_solve", self.kkt_solve),
            ("line_search", self.line_search),
        ]
    }

    /// Canonical report lines: every stage printed, zero-cost stages shown
    /// with an explicit `0.0ms` rather than dropped or left blank, followed
    /// by the `total` row. All consumers (CLI, bench harness) render through
    /// this so stage names stay consistently padded everywhere.
    pub fn report_lines(&self) -> Vec<String> {
        let fmt = |secs: f64| {
            if secs < 1.0 {
                format!("{:>10.1}ms", secs * 1e3)
            } else {
                format!("{:>11.3}s", secs)
            }
        };
        let mut lines: Vec<String> = self
            .stages()
            .iter()
            .map(|(name, secs)| format!("{name:<26} {}", fmt(*secs)))
            .collect();
        lines.push(format!("{:<26} {}", "total", fmt(self.total)));
        // The skip counter rides along under the same padding so the CLI and
        // bench reports show it next to the stages it explains.
        lines.push(format!(
            "{:<26} {:>12}",
            "schur_pairs_skipped", self.schur_pairs_skipped
        ));
        lines
    }
}

/// Result of an SDP solve.
#[derive(Debug, Clone)]
pub struct SdpSolution {
    /// Termination status.
    pub status: SdpStatus,
    /// Primal PSD blocks `Xⱼ`.
    pub x: Vec<Matrix>,
    /// Free variables `u`.
    pub free: Vec<f64>,
    /// Dual multipliers `y`.
    pub y: Vec<f64>,
    /// Dual slack blocks `Sⱼ`.
    pub s: Vec<Matrix>,
    /// Primal objective `Σ⟨Cⱼ,Xⱼ⟩ + fᵀu`.
    pub primal_objective: f64,
    /// Dual objective `bᵀy`.
    pub dual_objective: f64,
    /// Final relative primal infeasibility.
    pub primal_infeasibility: f64,
    /// Final relative dual infeasibility.
    pub dual_infeasibility: f64,
    /// Final relative duality gap.
    pub gap: f64,
    /// Number of interior-point iterations performed.
    pub iterations: usize,
    /// Per-stage wall-clock breakdown of this solve.
    pub timings: SolveTimings,
    /// `true` when the solve was seeded from a saved iterate
    /// (`SolverOptions.warm_start`) whose dimensions matched.
    pub warm_started: bool,
}

impl SdpSolution {
    /// `true` when the status indicates a trustworthy solution.
    pub fn is_ok(&self) -> bool {
        self.status.is_ok()
    }
}

impl std::fmt::Display for SdpSolution {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "status={} pobj={:.6e} dobj={:.6e} pinf={:.2e} dinf={:.2e} gap={:.2e} iters={}",
            self.status,
            self.primal_objective,
            self.dual_objective,
            self.primal_infeasibility,
            self.dual_infeasibility,
            self.gap,
            self.iterations
        )
    }
}

impl SdpStatus {
    /// Stable machine-readable name used in the checkpoint journal.
    pub fn as_str(self) -> &'static str {
        match self {
            SdpStatus::Optimal => "optimal",
            SdpStatus::NearOptimal => "near-optimal",
            SdpStatus::MaxIterations => "max-iterations",
            SdpStatus::Stalled => "stalled",
            SdpStatus::PrimalInfeasibleLikely => "primal-infeasible",
            SdpStatus::DualInfeasibleLikely => "dual-infeasible",
            SdpStatus::DeadlineExceeded => "deadline-exceeded",
        }
    }

    /// Inverse of [`SdpStatus::as_str`].
    pub fn parse(name: &str) -> Option<SdpStatus> {
        Some(match name {
            "optimal" => SdpStatus::Optimal,
            "near-optimal" => SdpStatus::NearOptimal,
            "max-iterations" => SdpStatus::MaxIterations,
            "stalled" => SdpStatus::Stalled,
            "primal-infeasible" => SdpStatus::PrimalInfeasibleLikely,
            "dual-infeasible" => SdpStatus::DualInfeasibleLikely,
            "deadline-exceeded" => SdpStatus::DeadlineExceeded,
            _ => return None,
        })
    }
}

impl cppll_json::ToJson for SdpStatus {
    fn to_json(&self) -> cppll_json::Value {
        cppll_json::Value::String(self.as_str().to_string())
    }
}

impl cppll_json::FromJson for SdpStatus {
    fn from_json(v: &cppll_json::Value) -> Result<Self, cppll_json::DecodeError> {
        use cppll_json::{decode, DecodeError};
        let name = decode::string(v)?;
        SdpStatus::parse(name)
            .ok_or_else(|| DecodeError::new(format!("unknown SDP status '{name}'")))
    }
}

impl cppll_json::ToJson for SolveTimings {
    fn to_json(&self) -> cppll_json::Value {
        cppll_json::ObjectBuilder::new()
            .field("reduction", self.reduction)
            .field("residuals", self.residuals)
            .field("schur_symbolic", self.schur_symbolic)
            .field("factorizations", self.factorizations)
            .field("schur_assembly", self.schur_assembly)
            .field("kkt_factor", self.kkt_factor)
            .field("kkt_solve", self.kkt_solve)
            .field("line_search", self.line_search)
            .field("total", self.total)
            .field("schur_pairs_skipped", self.schur_pairs_skipped as f64)
            .build()
    }
}

impl cppll_json::FromJson for SolveTimings {
    fn from_json(v: &cppll_json::Value) -> Result<Self, cppll_json::DecodeError> {
        use cppll_json::decode;
        Ok(SolveTimings {
            // Absent in journals written before the reduction stage existed;
            // those fingerprints are stale anyway, but decode stays lenient.
            reduction: decode::optional(v, "reduction")?.unwrap_or(0.0),
            residuals: decode::required(v, "residuals")?,
            // Absent in journals written before the sparse Schur path.
            schur_symbolic: decode::optional(v, "schur_symbolic")?.unwrap_or(0.0),
            factorizations: decode::required(v, "factorizations")?,
            schur_assembly: decode::required(v, "schur_assembly")?,
            kkt_factor: decode::required(v, "kkt_factor")?,
            kkt_solve: decode::required(v, "kkt_solve")?,
            line_search: decode::required(v, "line_search")?,
            total: decode::required(v, "total")?,
            schur_pairs_skipped: decode::optional(v, "schur_pairs_skipped")?
                .map_or(0, |n: f64| n as u64),
        })
    }
}

impl cppll_json::ToJson for SdpSolution {
    fn to_json(&self) -> cppll_json::Value {
        cppll_json::ObjectBuilder::new()
            .field("status", self.status)
            .field("x", &self.x)
            .field("free", &self.free)
            .field("y", &self.y)
            .field("s", &self.s)
            .field("primal_objective", self.primal_objective)
            .field("dual_objective", self.dual_objective)
            .field("primal_infeasibility", self.primal_infeasibility)
            .field("dual_infeasibility", self.dual_infeasibility)
            .field("gap", self.gap)
            .field("iterations", self.iterations)
            .field("timings", self.timings)
            .field("warm_started", self.warm_started)
            .build()
    }
}

impl cppll_json::FromJson for SdpSolution {
    fn from_json(v: &cppll_json::Value) -> Result<Self, cppll_json::DecodeError> {
        use cppll_json::decode;
        Ok(SdpSolution {
            status: decode::required(v, "status")?,
            x: decode::required(v, "x")?,
            free: decode::required(v, "free")?,
            y: decode::required(v, "y")?,
            s: decode::required(v, "s")?,
            primal_objective: decode::required(v, "primal_objective")?,
            dual_objective: decode::required(v, "dual_objective")?,
            primal_infeasibility: decode::required(v, "primal_infeasibility")?,
            dual_infeasibility: decode::required(v, "dual_infeasibility")?,
            gap: decode::required(v, "gap")?,
            iterations: decode::required(v, "iterations")?,
            timings: decode::required(v, "timings")?,
            warm_started: decode::required(v, "warm_started")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::SdpStatus;

    #[test]
    fn retryable_statuses_are_exactly_the_transient_ones() {
        assert!(SdpStatus::Stalled.is_retryable());
        assert!(SdpStatus::MaxIterations.is_retryable());
        assert!(!SdpStatus::Optimal.is_retryable());
        assert!(!SdpStatus::NearOptimal.is_retryable());
        assert!(!SdpStatus::PrimalInfeasibleLikely.is_retryable());
        assert!(!SdpStatus::DualInfeasibleLikely.is_retryable());
        assert!(!SdpStatus::DeadlineExceeded.is_retryable());
    }

    #[test]
    fn retryable_and_ok_are_disjoint() {
        for s in [
            SdpStatus::Optimal,
            SdpStatus::NearOptimal,
            SdpStatus::MaxIterations,
            SdpStatus::Stalled,
            SdpStatus::PrimalInfeasibleLikely,
            SdpStatus::DualInfeasibleLikely,
            SdpStatus::DeadlineExceeded,
        ] {
            assert!(!(s.is_ok() && s.is_retryable()), "{s}");
        }
    }

    #[test]
    fn display_covers_new_statuses() {
        assert_eq!(SdpStatus::DeadlineExceeded.to_string(), "deadline exceeded");
    }
}
