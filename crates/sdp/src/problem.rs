//! SDP problem container and builder API.

use cppll_linalg::Matrix;

use crate::solver::{solve, SolverOptions};
use crate::{SdpSolution, SymSparse};

/// Identifier of a PSD matrix block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockId(pub(crate) usize);

/// Identifier of a linear equality constraint (one row of `A`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConstraintId(pub(crate) usize);

/// Identifier of a free scalar variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FreeVarId(pub(crate) usize);

impl BlockId {
    /// Creation-order index of the block; indexes [`crate::SdpSolution::x`].
    pub fn index(self) -> usize {
        self.0
    }
}

impl ConstraintId {
    /// Creation-order index; indexes [`crate::SdpSolution::y`].
    pub fn index(self) -> usize {
        self.0
    }
}

impl FreeVarId {
    /// Creation-order index; indexes [`crate::SdpSolution::free`].
    pub fn index(self) -> usize {
        self.0
    }
}

/// A semidefinite program in block standard form
/// `min Σⱼ⟨Cⱼ,Xⱼ⟩ + fᵀu  s.t.  Σⱼ⟨A_{ij},Xⱼ⟩ + (Bu)_i = b_i,  Xⱼ ⪰ 0`.
///
/// Built incrementally: add PSD blocks and free variables, then constraints,
/// then fill coefficient entries. See the crate-level example.
#[derive(Debug, Clone)]
pub struct SdpProblem {
    /// Dimension of each PSD block.
    pub(crate) block_dims: Vec<usize>,
    /// Objective matrix per block.
    pub(crate) costs: Vec<SymSparse>,
    /// Objective coefficients of free variables.
    pub(crate) free_costs: Vec<f64>,
    /// Right-hand sides.
    pub(crate) b: Vec<f64>,
    /// Constraint data: `a[i]` is a list of `(block, matrix)` pairs.
    pub(crate) a: Vec<Vec<(usize, SymSparse)>>,
    /// Free-variable coefficients: `bfree[i]` is a list of `(var, coef)`.
    pub(crate) bfree: Vec<Vec<(usize, f64)>>,
    /// Whether all sparse data is already normalized (sorted, merged). Set
    /// by [`SdpProblem::normalize`], cleared by every mutating builder call;
    /// lets [`SdpProblem::solve`] skip the defensive clone-and-normalize.
    pub(crate) normalized: bool,
}

impl Default for SdpProblem {
    fn default() -> Self {
        Self::new()
    }
}

impl SdpProblem {
    /// Creates an empty problem.
    pub fn new() -> Self {
        SdpProblem {
            block_dims: Vec::new(),
            costs: Vec::new(),
            free_costs: Vec::new(),
            b: Vec::new(),
            a: Vec::new(),
            bfree: Vec::new(),
            normalized: false,
        }
    }

    /// Adds a PSD block of dimension `dim` and returns its id.
    pub fn add_psd_block(&mut self, dim: usize) -> BlockId {
        self.normalized = false;
        self.block_dims.push(dim);
        self.costs.push(SymSparse::new(dim));
        BlockId(self.block_dims.len() - 1)
    }

    /// Adds a free scalar variable with objective coefficient `cost`.
    pub fn add_free_var(&mut self, cost: f64) -> FreeVarId {
        self.normalized = false;
        self.free_costs.push(cost);
        FreeVarId(self.free_costs.len() - 1)
    }

    /// Changes the objective coefficient of a free variable.
    pub fn set_free_cost(&mut self, v: FreeVarId, cost: f64) {
        self.normalized = false;
        self.free_costs[v.0] = cost;
    }

    /// Adds an equality constraint with right-hand side `rhs`; coefficients
    /// are filled afterwards with [`SdpProblem::set_entry`] /
    /// [`SdpProblem::set_free_coeff`].
    pub fn add_constraint(&mut self, rhs: f64) -> ConstraintId {
        self.normalized = false;
        self.b.push(rhs);
        self.a.push(Vec::new());
        self.bfree.push(Vec::new());
        ConstraintId(self.b.len() - 1)
    }

    /// Accumulates `v` into entry `(r, c)` (symmetric) of block `blk` in
    /// constraint `con`.
    ///
    /// # Panics
    ///
    /// Panics if ids or indices are out of range.
    pub fn set_entry(&mut self, con: ConstraintId, blk: BlockId, r: usize, c: usize, v: f64) {
        self.normalized = false;
        let dim = self.block_dims[blk.0];
        let row = &mut self.a[con.0];
        if let Some((_, m)) = row.iter_mut().find(|(bj, _)| *bj == blk.0) {
            m.add(r, c, v);
        } else {
            let mut m = SymSparse::new(dim);
            m.add(r, c, v);
            row.push((blk.0, m));
        }
    }

    /// Accumulates `v` as the coefficient of free variable `var` in
    /// constraint `con`.
    pub fn set_free_coeff(&mut self, con: ConstraintId, var: FreeVarId, v: f64) {
        if v == 0.0 {
            return;
        }
        self.normalized = false;
        self.bfree[con.0].push((var.0, v));
    }

    /// Accumulates `v` into entry `(r, c)` of the objective matrix of block
    /// `blk`.
    pub fn set_cost_entry(&mut self, blk: BlockId, r: usize, c: usize, v: f64) {
        self.normalized = false;
        self.costs[blk.0].add(r, c, v);
    }

    /// Sets the objective matrix of block `blk` to `s · I` (accumulating).
    pub fn set_block_cost_identity(&mut self, blk: BlockId, s: f64) {
        self.normalized = false;
        for i in 0..self.block_dims[blk.0] {
            self.costs[blk.0].add(i, i, s);
        }
    }

    /// Number of equality constraints.
    pub fn num_constraints(&self) -> usize {
        self.b.len()
    }

    /// Number of PSD blocks.
    pub fn num_blocks(&self) -> usize {
        self.block_dims.len()
    }

    /// Number of free variables.
    pub fn num_free_vars(&self) -> usize {
        self.free_costs.len()
    }

    /// Total PSD dimension `Σⱼ nⱼ`.
    pub fn total_psd_dim(&self) -> usize {
        self.block_dims.iter().sum()
    }

    /// Dimensions of all PSD blocks.
    pub fn block_dims(&self) -> &[usize] {
        &self.block_dims
    }

    /// Normalizes all sparse data (sorts, merges duplicate adds).
    ///
    /// Idempotent and cheap when already normalized; callers that build a
    /// problem once and solve it repeatedly (the SOS attempt loop) call this
    /// up front so each [`SdpProblem::solve`] skips its defensive
    /// clone-and-normalize.
    pub fn normalize(&mut self) {
        if self.normalized {
            return;
        }
        for c in &mut self.costs {
            c.normalize();
        }
        for row in &mut self.a {
            for (_, m) in row.iter_mut() {
                m.normalize();
            }
        }
        for row in &mut self.bfree {
            row.sort_by_key(|&(v, _)| v);
            let mut merged: Vec<(usize, f64)> = Vec::with_capacity(row.len());
            for &(v, c) in row.iter() {
                if let Some(last) = merged.last_mut() {
                    if last.0 == v {
                        last.1 += c;
                        continue;
                    }
                }
                merged.push((v, c));
            }
            merged.retain(|&(_, c)| c != 0.0);
            *row = merged;
        }
        self.normalized = true;
    }

    /// Evaluates `Σⱼ⟨A_{ij}, Xⱼ⟩ + (Bu)_i` for all constraints.
    pub fn constraint_values(&self, x: &[Matrix], u: &[f64]) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.b.len());
        for i in 0..self.b.len() {
            let mut acc = 0.0;
            for (bj, m) in &self.a[i] {
                acc += m.dot_dense(&x[*bj]);
            }
            for &(v, c) in &self.bfree[i] {
                acc += c * u[v];
            }
            out.push(acc);
        }
        out
    }

    /// Solves the problem with the given options.
    ///
    /// Never panics on solver trouble; inspect [`SdpSolution::status`].
    pub fn solve(&self, options: &SolverOptions) -> SdpSolution {
        if self.normalized {
            return solve(self, options);
        }
        let mut p = self.clone();
        p.normalize();
        solve(&p, options)
    }
}
