//! Infeasible-start primal–dual interior-point method (HKM direction,
//! Mehrotra predictor–corrector) for block SDPs with free variables.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;
use std::time::Instant;

use cppll_linalg::{Cholesky, Matrix};

use cppll_trace::{TraceLevel, Tracer};

use crate::fault::{FaultInjector, FaultKind};
use crate::problem::SdpProblem;
use crate::solution::{SdpSolution, SdpStatus, SolveTimings};
use crate::sparse::SymSparse;

/// Which LDLᵀ kernel factors the quasidefinite KKT system
/// `[[M, B], [Bᵀ, −δI]]`. Both kernels apply the identical sequence of
/// floating-point operations (see `cppll_linalg::Ldlt`), so the choice
/// affects wall-clock only — verdicts and digests are bit-identical across
/// modes, and CI pins that.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KktMode {
    /// Decide per solve: the packed parallel kernel for KKT systems large
    /// enough to amortise panel packing, the serial blocked kernel below
    /// that.
    Auto,
    /// Serial cache-blocked kernel (`Ldlt::new`) — predictable for the small
    /// Schur systems of toy problems.
    Schur,
    /// Packed, parallel, sparsity-skipping kernel (`Ldlt::new_parallel`) for
    /// the augmented quasidefinite system of the flagship problems.
    Augmented,
}

impl KktMode {
    /// Stable machine-readable name (CLI `--kkt-mode` values).
    pub fn as_str(self) -> &'static str {
        match self {
            KktMode::Auto => "auto",
            KktMode::Schur => "schur",
            KktMode::Augmented => "augmented",
        }
    }

    /// Inverse of [`KktMode::as_str`].
    pub fn parse(name: &str) -> Option<KktMode> {
        Some(match name {
            "auto" => KktMode::Auto,
            "schur" => KktMode::Schur,
            "augmented" => KktMode::Augmented,
            _ => return None,
        })
    }
}

/// Process-wide default KKT mode (the CLI's `--kkt-mode` flag), mirroring
/// `cppll_par::set_threads`: 0 = auto, 1 = schur, 2 = augmented.
static DEFAULT_KKT_MODE: AtomicU8 = AtomicU8::new(0);

/// Sets the process-wide default KKT factorisation mode.
pub fn set_default_kkt_mode(mode: KktMode) {
    let v = match mode {
        KktMode::Auto => 0,
        KktMode::Schur => 1,
        KktMode::Augmented => 2,
    };
    DEFAULT_KKT_MODE.store(v, Ordering::Relaxed);
}

/// The process-wide default KKT factorisation mode.
pub fn default_kkt_mode() -> KktMode {
    match DEFAULT_KKT_MODE.load(Ordering::Relaxed) {
        1 => KktMode::Schur,
        2 => KktMode::Augmented,
        _ => KktMode::Auto,
    }
}

/// KKT dimension at which `Auto` switches to the packed parallel kernel;
/// below it, panel packing and worker fan-out cost more than they save.
const KKT_AUTO_DIM: usize = 192;

/// Resolves an options-level mode request against the process default and
/// the `Auto` size heuristic into a concrete kernel choice.
fn resolve_kkt_mode(requested: KktMode, kdim: usize) -> KktMode {
    let mode = match requested {
        KktMode::Auto => default_kkt_mode(),
        m => m,
    };
    match mode {
        KktMode::Auto => {
            if kdim >= KKT_AUTO_DIM {
                KktMode::Augmented
            } else {
                KktMode::Schur
            }
        }
        m => m,
    }
}

/// Tunable solver parameters.
#[derive(Debug, Clone)]
pub struct SolverOptions {
    /// Relative feasibility / gap tolerance for [`SdpStatus::Optimal`].
    pub tolerance: f64,
    /// Iteration limit.
    pub max_iterations: usize,
    /// Fraction-to-boundary factor (close to but below 1).
    pub step_fraction: f64,
    /// Diagonal regularisation added to the Schur complement.
    pub schur_regularization: f64,
    /// Magnitude of the quasidefinite regularisation for free variables.
    pub free_regularization: f64,
    /// Print per-iteration diagnostics to stderr.
    pub verbose: bool,
    /// Cooperative wall-clock deadline: the iteration loop checks it once
    /// per iteration and returns [`SdpStatus::DeadlineExceeded`] when it has
    /// passed. `None` (the default) disables the check.
    pub deadline: Option<Instant>,
    /// Optional fault injector (testing hook); polled once per solve.
    pub fault: Option<Arc<FaultInjector>>,
    /// Worker threads for the parallel hot loops (block factorisations,
    /// Schur assembly, direction recovery, line search). `0` uses the
    /// process-wide default ([`cppll_par::current_threads`]). Results are
    /// bit-identical for every thread count: parallel work items are pure
    /// functions of their index and all reductions run on the calling
    /// thread in fixed index order.
    pub threads: usize,
    /// Optional saved iterate to start from instead of the cold SDPA-style
    /// initial point. X/y/S (and the free variables) are copied from the
    /// saved solution with feasibility-restoring clamping: a diagonal shift
    /// is added to each X/S block and doubled until the block factorises,
    /// so near-boundary converged iterates become strictly interior again.
    /// Silently falls back to the cold start when the block structure does
    /// not match this problem or the saved iterate is non-finite. Seeding is
    /// deterministic: the same saved iterate always produces the same solve.
    pub warm_start: Option<SdpSolution>,
    /// Which LDLᵀ kernel factors the KKT system. [`KktMode::Auto`] (the
    /// default) defers to the process-wide default ([`set_default_kkt_mode`],
    /// the CLI's `--kkt-mode`), falling back to a size heuristic. Both modes
    /// are bit-identical; this is a wall-clock knob only.
    pub kkt_mode: KktMode,
    /// Optional trace sink. At [`TraceLevel::Solve`] the solve is wrapped
    /// in an `sdp_solve` span; at [`TraceLevel::Iter`] every interior-point
    /// iteration additionally emits an `iteration` instant with the
    /// already-computed numeric state (μ, residual norms, step lengths,
    /// per-stage times). Tracing only *reads* solver state, so results are
    /// bit-identical at every level.
    pub trace: Option<Tracer>,
}

impl Default for SolverOptions {
    fn default() -> Self {
        SolverOptions {
            tolerance: 1e-7,
            max_iterations: 100,
            step_fraction: 0.95,
            schur_regularization: 1e-11,
            free_regularization: 1e-9,
            verbose: false,
            deadline: None,
            fault: None,
            threads: 0,
            warm_start: None,
            kkt_mode: KktMode::Auto,
            trace: None,
        }
    }
}

/// Mutable interior-point iterate.
struct Iterate {
    x: Vec<Matrix>,
    s: Vec<Matrix>,
    y: Vec<f64>,
    u: Vec<f64>,
}

/// Per-iteration factorisation/workspace data for one PSD block.
struct BlockWork {
    /// Cholesky of `Xⱼ`.
    chol_x: Cholesky,
    /// Cholesky of `Sⱼ`.
    chol_s: Cholesky,
    /// Dense `Sⱼ⁻¹`.
    s_inv: Matrix,
}

/// Search direction.
struct Direction {
    dx: Vec<Matrix>,
    ds: Vec<Matrix>,
    dy: Vec<f64>,
    du: Vec<f64>,
}

pub(crate) fn solve(p: &SdpProblem, opt: &SolverOptions) -> SdpSolution {
    let solve_start = Instant::now();
    let threads = cppll_par::resolve_threads(opt.threads);
    let mut tm = SolveTimings::default();
    let m = p.num_constraints();
    let nblocks = p.num_blocks();
    let nfree = p.num_free_vars();
    let n_tot: usize = p.total_psd_dim().max(1);

    let _solve_span = opt.trace.as_ref().map(|t| {
        t.span(
            TraceLevel::Solve,
            "sdp_solve",
            format!("m={m} blocks={nblocks} free={nfree} threads={threads}"),
        )
    });

    // Degenerate corner: nothing to optimise.
    if m == 0 && nblocks == 0 {
        tm.total = solve_start.elapsed().as_secs_f64();
        return SdpSolution {
            status: SdpStatus::Optimal,
            x: Vec::new(),
            free: vec![0.0; nfree],
            y: Vec::new(),
            s: Vec::new(),
            primal_objective: 0.0,
            dual_objective: 0.0,
            primal_infeasibility: 0.0,
            dual_infeasibility: 0.0,
            gap: 0.0,
            iterations: 0,
            timings: tm,
            warm_started: false,
        };
    }

    // Block → constraints incidence.
    let mut touching: Vec<Vec<usize>> = vec![Vec::new(); nblocks];
    for (i, row) in p.a.iter().enumerate() {
        for (bj, _) in row {
            touching[*bj].push(i);
        }
    }
    // Constraint data norms for scaling-aware initial point.
    let mut a_norm_max: f64 = 1.0;
    let mut b_norm_max: f64 = 0.0;
    for (i, row) in p.a.iter().enumerate() {
        let mut rn = 0.0f64;
        for (_, mat) in row {
            let f = mat.norm();
            rn += f * f;
        }
        for &(_, c) in &p.bfree[i] {
            rn += c * c;
        }
        a_norm_max = a_norm_max.max(rn.sqrt());
        b_norm_max = b_norm_max.max(p.b[i].abs());
    }
    let c_norm: f64 = {
        let mut acc = 0.0f64;
        for c in &p.costs {
            acc += c.norm().powi(2);
        }
        for &f in &p.free_costs {
            acc += f * f;
        }
        acc.sqrt()
    };
    let b_norm = cppll_linalg::vec_ops::norm2(&p.b);

    // Initial point (SDPA-style magnitudes).
    let p_init = (10.0_f64)
        .max((n_tot as f64).sqrt())
        .max(10.0 * b_norm_max / a_norm_max.max(1.0));
    let d_init = (10.0_f64)
        .max((n_tot as f64).sqrt())
        .max(a_norm_max)
        .max(c_norm);
    let mut it = Iterate {
        x: p.block_dims
            .iter()
            .map(|&n| Matrix::identity(n).scale(p_init))
            .collect(),
        s: p.block_dims
            .iter()
            .map(|&n| Matrix::identity(n).scale(d_init))
            .collect(),
        y: vec![0.0; m],
        u: vec![0.0; nfree],
    };
    let mut warm_started = false;
    if let Some(ws) = &opt.warm_start {
        if let Some(seeded) = seed_from(ws, &p.block_dims, m, nfree) {
            it = seeded;
            warm_started = true;
        }
    }

    let mut stall_count = 0usize;
    let mut stagnation = 0usize;
    let mut prev_gap = f64::INFINITY;
    let mut last = Metrics::default();
    let mut iterations = 0usize;

    // Iteration-persistent workspaces: the KKT matrix and the corrector /
    // H block buffers are allocated once and reused every iteration.
    let kdim = m + nfree;
    let mut kkt = Matrix::zeros(kdim, kdim);
    let mut corr_ws: Vec<Matrix> = p.block_dims.iter().map(|&n| Matrix::zeros(n, n)).collect();
    let mut h_ws: Vec<Matrix> = p.block_dims.iter().map(|&n| Matrix::zeros(n, n)).collect();
    let mut num_ws: Vec<Matrix> = p.block_dims.iter().map(|&n| Matrix::zeros(n, n)).collect();

    // Symbolic Schur analysis, once per solve: per-block active column
    // unions, per-constraint leading-zero prefixes, flat workspace
    // capacities, and the exact count of structurally-zero Schur pairs the
    // assembly below never evaluates.
    let stage_start = Instant::now();
    let schur_sym = SchurSymbolic::build(p, &touching, m);
    let mut schur_ws = SchurWorkspace::new(&schur_sym);
    tm.schur_symbolic += stage_start.elapsed().as_secs_f64();
    tm.schur_pairs_skipped = schur_sym.pairs_skipped;
    let kkt_mode = resolve_kkt_mode(opt.kkt_mode, kdim);
    if let Some(t) = &opt.trace {
        t.counter("schur_pairs_skipped", schur_sym.pairs_skipped);
    }

    // Fault injection (testing hook): decided once per solve, applied after
    // the first iteration's residuals are computed so the returned iterate
    // and metrics are real.
    let injected: Option<FaultKind> = opt.fault.as_deref().and_then(FaultInjector::poll);

    for iter in 0..opt.max_iterations {
        iterations = iter;
        let tm_iter = tm;
        // ---- Residuals -------------------------------------------------
        let stage_start = Instant::now();
        let av = p.constraint_values(&it.x, &it.u);
        let rp: Vec<f64> = p.b.iter().zip(&av).map(|(b, a)| b - a).collect();
        let rd: Vec<Matrix> = cppll_par::parallel_map(nblocks, threads, |j| {
            // Rdⱼ = Cⱼ − Sⱼ − Σᵢ yᵢ A_{ij}
            let mut r = it.s[j].scale(-1.0);
            p.costs[j].add_scaled_into(1.0, &mut r);
            for &i in &touching[j] {
                if it.y[i] == 0.0 {
                    continue;
                }
                for (bj, mat) in &p.a[i] {
                    if *bj == j {
                        mat.add_scaled_into(-it.y[i], &mut r);
                    }
                }
            }
            r
        });
        // rf = f − Bᵀy
        let mut rf = p.free_costs.clone();
        for (i, row) in p.bfree.iter().enumerate() {
            for &(k, c) in row {
                rf[k] -= c * it.y[i];
            }
        }

        let mut xs = 0.0;
        for j in 0..nblocks {
            xs += it.x[j].dot(&it.s[j]);
        }
        let mu = xs / n_tot as f64;

        let pobj: f64 = (0..nblocks)
            .map(|j| p.costs[j].dot_dense(&it.x[j]))
            .sum::<f64>()
            + cppll_linalg::vec_ops::dot(&p.free_costs, &it.u);
        let dobj = cppll_linalg::vec_ops::dot(&p.b, &it.y);

        let pinf = cppll_linalg::vec_ops::norm2(&rp) / (1.0 + b_norm);
        let dinf = {
            let mut acc = cppll_linalg::vec_ops::norm2(&rf).powi(2);
            for r in &rd {
                acc += r.norm().powi(2);
            }
            acc.sqrt() / (1.0 + c_norm)
        };
        let gap = (pobj - dobj).abs() / (1.0 + pobj.abs() + dobj.abs());
        let mu_rel = mu.abs() / (1.0 + pobj.abs() + dobj.abs());
        last = Metrics {
            pobj,
            dobj,
            pinf,
            dinf,
            gap,
            mu_rel,
        };
        tm.residuals += stage_start.elapsed().as_secs_f64();

        if opt.verbose {
            eprintln!(
                "iter {iter:3}: pobj={pobj:+.6e} dobj={dobj:+.6e} pinf={pinf:.2e} dinf={dinf:.2e} gap={gap:.2e} mu={mu:.2e}"
            );
        }

        // ---- Injected faults and deadline -------------------------------
        if iter == 0 {
            if let Some(kind) = injected {
                if let Some(t) = &opt.trace {
                    t.counter("fault_injected", 1);
                }
                return finish(it, kind.status(), last, iter, tm, solve_start, warm_started);
            }
        }
        if let Some(deadline) = opt.deadline {
            if Instant::now() >= deadline {
                return finish(
                    it,
                    SdpStatus::DeadlineExceeded,
                    last,
                    iter,
                    tm,
                    solve_start,
                    warm_started,
                );
            }
        }

        // ---- Termination ----------------------------------------------
        if pinf < opt.tolerance && dinf < opt.tolerance && gap.max(mu_rel) < opt.tolerance {
            return finish(
                it,
                SdpStatus::Optimal,
                last,
                iter,
                tm,
                solve_start,
                warm_started,
            );
        }
        // Degenerate (no-strict-interior) instances: complementarity and
        // feasibility converge but the objective gap stagnates because the
        // multipliers blow up along the degenerate face. Accept the point as
        // near-optimal once the gap has stopped improving.
        if gap > 0.99 * prev_gap {
            stagnation += 1;
        } else {
            stagnation = 0;
        }
        prev_gap = gap;
        if stagnation >= 8 && pinf < 1e-5 && dinf < 1e-5 && mu_rel < 1e-6 {
            return finish(
                it,
                SdpStatus::NearOptimal,
                last,
                iter,
                tm,
                solve_start,
                warm_started,
            );
        }
        // Infeasibility heuristics: unbounded dual ⇒ primal infeasible.
        let scale = 1.0 + b_norm + c_norm;
        if dobj > 1e9 * scale && dinf < 1e-4 {
            return finish(
                it,
                SdpStatus::PrimalInfeasibleLikely,
                last,
                iter,
                tm,
                solve_start,
                warm_started,
            );
        }
        if pobj < -1e9 * scale && pinf < 1e-4 {
            return finish(
                it,
                SdpStatus::DualInfeasibleLikely,
                last,
                iter,
                tm,
                solve_start,
                warm_started,
            );
        }

        // ---- Factorisations --------------------------------------------
        let stage_start = Instant::now();
        let factored: Vec<Option<BlockWork>> = cppll_par::parallel_map(nblocks, threads, |j| {
            let cx = robust_cholesky(&it.x[j])?;
            let cs = robust_cholesky(&it.s[j])?;
            let s_inv = cs.inverse();
            Some(BlockWork {
                chol_x: cx,
                chol_s: cs,
                s_inv,
            })
        });
        tm.factorizations += stage_start.elapsed().as_secs_f64();
        if factored.iter().any(Option::is_none) {
            return finish(
                it,
                SdpStatus::Stalled,
                last,
                iter,
                tm,
                solve_start,
                warm_started,
            );
        }
        let work: Vec<BlockWork> = factored.into_iter().map(Option::unwrap).collect();

        // ---- Schur complement -------------------------------------------
        let stage_start = Instant::now();
        kkt.set_zero();
        assemble_schur(
            p,
            &touching,
            &schur_sym,
            &it.x,
            &work,
            threads,
            &mut schur_ws,
            &mut kkt,
        );
        for i in 0..m {
            kkt[(i, i)] += opt.schur_regularization * (1.0 + kkt[(i, i)].abs());
        }
        // Free-variable coupling and quasidefinite regularisation.
        for (i, row) in p.bfree.iter().enumerate() {
            for &(k, c) in row {
                kkt[(i, m + k)] = c;
                kkt[(m + k, i)] = c;
            }
        }
        for k in 0..nfree {
            kkt[(m + k, m + k)] = -opt.free_regularization;
        }
        tm.schur_assembly += stage_start.elapsed().as_secs_f64();
        let stage_start = Instant::now();
        // Both kernels perform the identical floating-point operation
        // sequence; the mode only picks serial-blocked vs packed-parallel.
        let kkt_reg = opt.free_regularization.max(1e-13);
        let kkt_fact = match kkt_mode {
            KktMode::Augmented => kkt.ldlt_parallel(kkt_reg, threads),
            _ => kkt.ldlt(kkt_reg),
        };
        let kkt_fact = match kkt_fact {
            Ok(f) => f,
            Err(_) => {
                return finish(
                    it,
                    SdpStatus::Stalled,
                    last,
                    iter,
                    tm,
                    solve_start,
                    warm_started,
                )
            }
        };
        tm.kkt_factor += stage_start.elapsed().as_secs_f64();
        let kkt_solver = KktSolver {
            matrix: &kkt,
            factor: &kkt_fact,
        };

        // ---- Predictor (affine) direction --------------------------------
        let stage_start = Instant::now();
        let dir_aff = compute_direction(
            p,
            &it,
            &work,
            &touching,
            &kkt_solver,
            &rp,
            &rd,
            &rf,
            0.0,
            mu,
            None,
            threads,
            &mut h_ws,
            &mut num_ws,
        );
        tm.kkt_solve += stage_start.elapsed().as_secs_f64();
        let stage_start = Instant::now();
        let (ap_aff, ad_aff) = step_lengths(&it, &dir_aff, &work, 1.0, threads);
        // μ_aff — summed in ascending block order on the calling thread.
        let xs_terms: Vec<f64> = cppll_par::parallel_map(nblocks, threads, |j| {
            let xn = {
                let mut t = it.x[j].clone();
                t.axpy(ap_aff, &dir_aff.dx[j]);
                t
            };
            let sn = {
                let mut t = it.s[j].clone();
                t.axpy(ad_aff, &dir_aff.ds[j]);
                t
            };
            xn.dot(&sn)
        });
        let xs_aff: f64 = xs_terms.iter().sum();
        let mu_aff = xs_aff / n_tot as f64;
        let sigma = ((mu_aff / mu).max(0.0).powi(3)).clamp(1e-6, 1.0);
        tm.line_search += stage_start.elapsed().as_secs_f64();

        // ---- Corrector direction -----------------------------------------
        let stage_start = Instant::now();
        cppll_par::parallel_chunks_mut(&mut corr_ws, threads, |lo, chunk| {
            for (k, cj) in chunk.iter_mut().enumerate() {
                let j = lo + k;
                dir_aff.dx[j].matmul_into(&dir_aff.ds[j], cj);
            }
        });
        let dir = compute_direction(
            p,
            &it,
            &work,
            &touching,
            &kkt_solver,
            &rp,
            &rd,
            &rf,
            sigma,
            mu,
            Some(&corr_ws),
            threads,
            &mut h_ws,
            &mut num_ws,
        );
        tm.kkt_solve += stage_start.elapsed().as_secs_f64();
        let tau = if iter < 4 { opt.step_fraction } else { 0.98 };
        let stage_start = Instant::now();
        let (ap, ad) = step_lengths(&it, &dir, &work, tau, threads);
        tm.line_search += stage_start.elapsed().as_secs_f64();
        if opt.verbose {
            eprintln!("          sigma={sigma:.2e} ap={ap:.3e} ad={ad:.3e} (aff {ap_aff:.2e}/{ad_aff:.2e})");
        }

        if ap < 1e-4 && ad < 1e-4 {
            stall_count += 1;
            if stall_count >= 4 {
                // Weakly infeasible or numerically exhausted.
                let status = near_status(&last, opt);
                return finish(it, status, last, iter, tm, solve_start, warm_started);
            }
        } else {
            stall_count = 0;
        }

        // ---- Update -------------------------------------------------------
        for j in 0..nblocks {
            it.x[j].axpy(ap, &dir.dx[j]);
            it.x[j].symmetrize();
            it.s[j].axpy(ad, &dir.ds[j]);
            it.s[j].symmetrize();
        }
        for (u, du) in it.u.iter_mut().zip(&dir.du) {
            *u += ap * du;
        }
        for (y, dy) in it.y.iter_mut().zip(&dir.dy) {
            *y += ad * dy;
        }

        // ---- Telemetry ----------------------------------------------------
        // Strictly read-only: copies of already-computed values, emitted
        // after the iterate update so the numerics above are untouched.
        if let Some(t) = &opt.trace {
            if t.enabled(TraceLevel::Iter) {
                t.instant(
                    TraceLevel::Iter,
                    "iteration",
                    vec![
                        ("iter", (iter as u64).into()),
                        ("mu", mu.into()),
                        ("pinf", pinf.into()),
                        ("dinf", dinf.into()),
                        ("gap", gap.into()),
                        ("sigma", sigma.into()),
                        ("ap", ap.into()),
                        ("ad", ad.into()),
                        ("ap_aff", ap_aff.into()),
                        ("ad_aff", ad_aff.into()),
                        ("blocks", (nblocks as u64).into()),
                        ("residuals_s", (tm.residuals - tm_iter.residuals).into()),
                        (
                            "factorizations_s",
                            (tm.factorizations - tm_iter.factorizations).into(),
                        ),
                        (
                            "schur_assembly_s",
                            (tm.schur_assembly - tm_iter.schur_assembly).into(),
                        ),
                        ("kkt_factor_s", (tm.kkt_factor - tm_iter.kkt_factor).into()),
                        ("kkt_solve_s", (tm.kkt_solve - tm_iter.kkt_solve).into()),
                        ("line_search_s", (tm.line_search - tm_iter.line_search).into()),
                        ("schur_pairs_skipped", tm.schur_pairs_skipped.into()),
                    ],
                );
            }
        }
    }

    let status = near_status(&last, opt);
    finish(it, status, last, iterations, tm, solve_start, warm_started)
}

/// Per-solve symbolic analysis of the Schur assembly.
///
/// Computed once from the constraint supports (the iterate values never
/// change the structure): for each block, the sorted union of the touching
/// constraints' supports — the only columns of `T = S⁻¹AX` the pair
/// products ever read — and each constraint's first structurally-nonzero
/// row, below which a forward substitution against `A_{ij} Xⱼ` only moves
/// zeros. Also sizes the flat per-block workspaces and counts, exactly, the
/// structurally-zero Schur pairs `(i, k)` that share no block and are
/// therefore never evaluated.
struct SchurSymbolic {
    /// Per block: sorted union of the supports of all touching constraints.
    active_cols: Vec<Vec<usize>>,
    /// Per block, per touching constraint: first structurally-nonzero row
    /// of `A_{ij}` (the block dimension when the matrix is empty).
    first_rows: Vec<Vec<usize>>,
    /// Capacity of the flat `T` workspace: `max_j |cons_j| · n_j²`.
    ts_cap: usize,
    /// Capacity of the flat pair-product buffer: `max_j C(|cons_j|+1, 2)`.
    rows_cap: usize,
    /// `C(m+1, 2)` minus the number of distinct interacting pairs: the
    /// Schur entries provably zero by structure, skipped per assembly pass.
    pairs_skipped: u64,
}

impl SchurSymbolic {
    fn build(p: &SdpProblem, touching: &[Vec<usize>], m: usize) -> SchurSymbolic {
        let nblocks = touching.len();
        let mut active_cols = vec![Vec::new(); nblocks];
        let mut first_rows = vec![Vec::new(); nblocks];
        let mut ts_cap = 0usize;
        let mut rows_cap = 0usize;
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        for (j, cons) in touching.iter().enumerate() {
            if cons.is_empty() {
                continue;
            }
            let n = p.block_dims[j];
            let mut union: Vec<usize> = Vec::new();
            let mut firsts = Vec::with_capacity(cons.len());
            for &i in cons {
                let a_ij = constraint_block(p, i, j);
                union.extend(a_ij.support());
                firsts.push(a_ij.min_support().unwrap_or(n));
            }
            union.sort_unstable();
            union.dedup();
            for (a, &ia) in cons.iter().enumerate() {
                for &ib in &cons[..=a] {
                    pairs.push((ia as u32, ib as u32));
                }
            }
            ts_cap = ts_cap.max(cons.len() * n * n);
            rows_cap = rows_cap.max(cons.len() * (cons.len() + 1) / 2);
            active_cols[j] = union;
            first_rows[j] = firsts;
        }
        pairs.sort_unstable();
        pairs.dedup();
        let total = (m as u64) * (m as u64 + 1) / 2;
        SchurSymbolic {
            active_cols,
            first_rows,
            ts_cap,
            rows_cap,
            pairs_skipped: total - pairs.len() as u64,
        }
    }
}

/// Flat, iteration-persistent scratch for [`assemble_schur`]: one buffer of
/// column-major `n×n` slots for the `T` matrices and one triangular buffer
/// for the pair products, sized once from the symbolic analysis.
struct SchurWorkspace {
    ts: Vec<f64>,
    rows: Vec<f64>,
}

impl SchurWorkspace {
    fn new(sym: &SchurSymbolic) -> SchurWorkspace {
        SchurWorkspace {
            ts: vec![0.0; sym.ts_cap],
            rows: vec![0.0; sym.rows_cap],
        }
    }
}

/// Assembles the `m × m` Schur-complement part `M_{ik} = Σⱼ tr(A_{ij} Sⱼ⁻¹
/// A_{kj} Xⱼ)` into the top-left corner of `kkt` (which the caller has
/// zeroed).
///
/// Sparsity-exploiting: per block, `T = S⁻¹AX` is formed only at the active
/// columns (the support union from the symbolic analysis — the only columns
/// `dot_general` reads), each triangular solve starts at the constraint's
/// first structurally-nonzero row, and both stages write into flat
/// preallocated workspaces instead of per-iteration `Vec<Matrix>`
/// allocations. Every computed value is bit-identical to the dense
/// reference ([`assemble_schur_dense_for_tests`]): restricting *which*
/// columns are computed changes no operation on the survivors, and the
/// skipped forward-substitution prefix only ever moved `+0.0`s.
///
/// Parallel and bit-deterministic: workspace slots are pure functions of
/// their chunk index, and the accumulation into `kkt` runs on the calling
/// thread in fixed `(block, row, column)` order — so any thread count
/// produces the same floating-point result as a serial run.
#[allow(clippy::too_many_arguments)]
fn assemble_schur(
    p: &SdpProblem,
    touching: &[Vec<usize>],
    sym: &SchurSymbolic,
    x: &[Matrix],
    work: &[BlockWork],
    threads: usize,
    ws: &mut SchurWorkspace,
    kkt: &mut Matrix,
) {
    for (j, cons) in touching.iter().enumerate() {
        if cons.is_empty() {
            continue;
        }
        let n = x[j].nrows();
        let nn = n * n;
        let active = &sym.active_cols[j][..];
        let firsts = &sym.first_rows[j][..];
        // T_{ij} = Sⱼ⁻¹ A_{ij} Xⱼ at the active columns only. Inactive
        // columns of a slot keep stale values from earlier blocks; they are
        // never read.
        let ts = &mut ws.ts[..cons.len() * nn];
        cppll_par::parallel_fill_chunks(ts, nn, threads, |k, chunk| {
            let a_ij = constraint_block(p, cons[k], j);
            a_ij.mul_dense_cols_into(&x[j], active, chunk);
            let first = firsts[k];
            for &c in active {
                work[j]
                    .chol_s
                    .solve_in_place_from(&mut chunk[c * n..(c + 1) * n], first);
            }
        });
        let ts = &ws.ts[..cons.len() * nn];
        // Lower-triangle pair products into the flat triangular buffer,
        // one variable-length row per constraint.
        let npairs = cons.len() * (cons.len() + 1) / 2;
        let mut rows: Vec<&mut [f64]> = Vec::with_capacity(cons.len());
        let mut rest = &mut ws.rows[..npairs];
        for idx in 0..cons.len() {
            let (head, tail) = rest.split_at_mut(idx + 1);
            rows.push(head);
            rest = tail;
        }
        cppll_par::parallel_chunks_mut(&mut rows, threads, |lo, chunk| {
            for (k, row) in chunk.iter_mut().enumerate() {
                let a_ij = constraint_block(p, cons[lo + k], j);
                for (t2, slot) in row.iter_mut().enumerate() {
                    *slot = a_ij.dot_general_slice(&ts[t2 * nn..(t2 + 1) * nn]);
                }
            }
        });
        for (idx, row) in rows.iter().enumerate() {
            let i = cons[idx];
            for (k, &v) in row.iter().enumerate() {
                let i2 = cons[k];
                kkt[(i, i2)] += v;
                if i != i2 {
                    kkt[(i2, i)] += v;
                }
            }
        }
    }
}

/// Testing hook: the solver's parallel Schur-complement assembly, exposed so
/// integration tests can pin it against a dense reference and across thread
/// counts. `x` and `s` are per-block symmetric positive-definite iterate
/// matrices. Not part of the public API.
#[doc(hidden)]
pub fn assemble_schur_for_tests(
    p: &SdpProblem,
    x: &[Matrix],
    s: &[Matrix],
    threads: usize,
) -> Matrix {
    let mut p = p.clone();
    p.normalize();
    let m = p.num_constraints();
    let nblocks = p.num_blocks();
    let mut touching: Vec<Vec<usize>> = vec![Vec::new(); nblocks];
    for (i, row) in p.a.iter().enumerate() {
        for (bj, _) in row {
            touching[*bj].push(i);
        }
    }
    let work: Vec<BlockWork> = (0..nblocks)
        .map(|j| {
            let chol_x = x[j].cholesky().expect("X block must be SPD");
            let chol_s = s[j].cholesky().expect("S block must be SPD");
            let s_inv = chol_s.inverse();
            BlockWork {
                chol_x,
                chol_s,
                s_inv,
            }
        })
        .collect();
    let sym = SchurSymbolic::build(&p, &touching, m);
    let mut ws = SchurWorkspace::new(&sym);
    let mut kkt = Matrix::zeros(m, m);
    assemble_schur(&p, &touching, &sym, x, &work, threads, &mut ws, &mut kkt);
    kkt
}

/// Testing hook: the pre-sparsity dense Schur assembly (full `mul_dense`,
/// full-column triangular solves, per-call allocations), kept verbatim as
/// the bit-exactness oracle for the sparse path. Not part of the public API.
#[doc(hidden)]
pub fn assemble_schur_dense_for_tests(
    p: &SdpProblem,
    x: &[Matrix],
    s: &[Matrix],
    threads: usize,
) -> Matrix {
    let mut p = p.clone();
    p.normalize();
    let m = p.num_constraints();
    let nblocks = p.num_blocks();
    let mut touching: Vec<Vec<usize>> = vec![Vec::new(); nblocks];
    for (i, row) in p.a.iter().enumerate() {
        for (bj, _) in row {
            touching[*bj].push(i);
        }
    }
    let work: Vec<BlockWork> = (0..nblocks)
        .map(|j| {
            let chol_x = x[j].cholesky().expect("X block must be SPD");
            let chol_s = s[j].cholesky().expect("S block must be SPD");
            let s_inv = chol_s.inverse();
            BlockWork {
                chol_x,
                chol_s,
                s_inv,
            }
        })
        .collect();
    let mut kkt = Matrix::zeros(m, m);
    for (j, cons) in touching.iter().enumerate() {
        if cons.is_empty() {
            continue;
        }
        let ts: Vec<Matrix> = cppll_par::parallel_map(cons.len(), threads, |k| {
            let a_ij = constraint_block(&p, cons[k], j);
            let ax = a_ij.mul_dense(&x[j]);
            work[j].chol_s.solve_matrix(&ax)
        });
        let rows: Vec<Vec<f64>> = cppll_par::parallel_map(cons.len(), threads, |idx| {
            let a_ij = constraint_block(&p, cons[idx], j);
            ts[..=idx].iter().map(|t2| a_ij.dot_general(t2)).collect()
        });
        for (idx, row) in rows.iter().enumerate() {
            let i = cons[idx];
            for (k, &v) in row.iter().enumerate() {
                let i2 = cons[k];
                kkt[(i, i2)] += v;
                if i != i2 {
                    kkt[(i2, i)] += v;
                }
            }
        }
    }
    kkt
}

#[derive(Default, Clone, Copy)]
struct Metrics {
    pobj: f64,
    dobj: f64,
    pinf: f64,
    dinf: f64,
    gap: f64,
    mu_rel: f64,
}

fn near_status(m: &Metrics, opt: &SolverOptions) -> SdpStatus {
    let loose = (opt.tolerance * 1e3).min(1e-4);
    if m.pinf < loose && m.dinf < loose && (m.gap < loose || m.mu_rel < 1e-6) {
        SdpStatus::NearOptimal
    } else if m.pinf > 1e-4 && m.mu_rel < 1e-7 {
        // Complementarity converged while primal feasibility cannot: the
        // classic footprint of primal infeasibility under HKM.
        SdpStatus::PrimalInfeasibleLikely
    } else {
        SdpStatus::MaxIterations
    }
}

fn finish(
    it: Iterate,
    status: SdpStatus,
    m: Metrics,
    iterations: usize,
    mut tm: SolveTimings,
    solve_start: Instant,
    warm_started: bool,
) -> SdpSolution {
    tm.total = solve_start.elapsed().as_secs_f64();
    SdpSolution {
        status,
        x: it.x,
        free: it.u,
        y: it.y,
        s: it.s,
        primal_objective: m.pobj,
        dual_objective: m.dobj,
        primal_infeasibility: m.pinf,
        dual_infeasibility: m.dinf,
        gap: m.gap,
        iterations: iterations + 1,
        timings: tm,
        warm_started,
    }
}

/// Cholesky with one retry after a small diagonal nudge.
fn robust_cholesky(a: &Matrix) -> Option<Cholesky> {
    if let Ok(c) = a.cholesky() {
        return Some(c);
    }
    let n = a.nrows();
    let bump = 1e-12 * a.trace().abs().max(1.0) / n as f64;
    let mut b = a.clone();
    for i in 0..n {
        b[(i, i)] += bump;
    }
    b.cholesky().ok()
}

/// Builds a warm-start iterate from a saved solution, or `None` when the
/// saved solution cannot seed this problem.
///
/// The saved X/S blocks must match `block_dims` exactly and `y`/`free` must
/// have the right lengths; every entry must be finite. Each X/S block is
/// then clamped back to the strict interior: blocks that already factorise
/// are used as-is, otherwise a diagonal shift (starting at a trace-scaled
/// epsilon and doubling) is added until the Cholesky succeeds. The whole
/// procedure is deterministic — the same saved iterate always yields the
/// same seed.
fn seed_from(ws: &SdpSolution, block_dims: &[usize], m: usize, nfree: usize) -> Option<Iterate> {
    if ws.x.len() != block_dims.len()
        || ws.s.len() != block_dims.len()
        || ws.y.len() != m
        || ws.free.len() != nfree
    {
        return None;
    }
    for (mat, &n) in
        ws.x.iter()
            .chain(ws.s.iter())
            .zip(block_dims.iter().chain(block_dims))
    {
        if mat.nrows() != n || mat.ncols() != n {
            return None;
        }
        if !mat.as_slice().iter().all(|v| v.is_finite()) {
            return None;
        }
    }
    if !ws.y.iter().chain(ws.free.iter()).all(|v| v.is_finite()) {
        return None;
    }
    let clamp = |mat: &Matrix| -> Option<Matrix> {
        if robust_cholesky(mat).is_some() {
            return Some(mat.clone());
        }
        let n = mat.nrows();
        let mut shift = 1e-10 * (mat.trace().abs() / n.max(1) as f64).max(1.0);
        for _ in 0..80 {
            let mut b = mat.clone();
            for i in 0..n {
                b[(i, i)] += shift;
            }
            if robust_cholesky(&b).is_some() {
                return Some(b);
            }
            shift *= 2.0;
        }
        None
    };
    let mut x = Vec::with_capacity(ws.x.len());
    for mat in &ws.x {
        x.push(clamp(mat)?);
    }
    let mut s = Vec::with_capacity(ws.s.len());
    for mat in &ws.s {
        s.push(clamp(mat)?);
    }
    Some(Iterate {
        x,
        s,
        y: ws.y.clone(),
        u: ws.free.clone(),
    })
}

/// The `A_{ij}` matrix of constraint `i` on block `j`.
///
/// # Panics
///
/// Panics if the constraint does not touch the block (callers iterate
/// incidence lists, so this is an internal invariant).
fn constraint_block(p: &SdpProblem, i: usize, j: usize) -> &SymSparse {
    p.a[i]
        .iter()
        .find(|(bj, _)| *bj == j)
        .map(|(_, m)| m)
        .expect("incidence list out of sync")
}

/// A factored KKT system with its dense matrix retained for iterative
/// refinement.
struct KktSolver<'a> {
    matrix: &'a Matrix,
    factor: &'a cppll_linalg::Ldlt,
}

impl KktSolver<'_> {
    /// Solves with up to two rounds of iterative refinement, which is what
    /// keeps primal feasibility converging once μ is small and the Schur
    /// complement is ill-conditioned.
    fn solve(&self, rhs: &[f64]) -> Vec<f64> {
        let mut sol = self.factor.solve(rhs);
        let rhs_norm = cppll_linalg::vec_ops::norm_inf(rhs).max(1e-300);
        for _ in 0..3 {
            let ax = self.matrix.matvec(&sol);
            let res: Vec<f64> = rhs.iter().zip(&ax).map(|(b, a)| b - a).collect();
            let rn = cppll_linalg::vec_ops::norm_inf(&res);
            if rn <= 1e-14 * rhs_norm {
                break;
            }
            let corr = self.factor.solve(&res);
            for (s, c) in sol.iter_mut().zip(&corr) {
                *s += c;
            }
        }
        sol
    }
}

/// Solves the Newton system for a given centring parameter and corrector.
#[allow(clippy::too_many_arguments)]
fn compute_direction(
    p: &SdpProblem,
    it: &Iterate,
    work: &[BlockWork],
    touching: &[Vec<usize>],
    kkt: &KktSolver<'_>,
    rp: &[f64],
    rd: &[Matrix],
    rf: &[f64],
    sigma: f64,
    mu: f64,
    corr: Option<&[Matrix]>,
    threads: usize,
    h: &mut [Matrix],
    num_ws: &mut [Matrix],
) -> Direction {
    let m = p.num_constraints();
    let nblocks = p.num_blocks();
    let nfree = p.num_free_vars();

    // Hⱼ = σμ Sⱼ⁻¹ − Xⱼ − (corrⱼ + Xⱼ Rdⱼ) Sⱼ⁻¹, written into the reusable
    // workspaces (`num_ws` holds the Xⱼ Rdⱼ numerator, hoisted out of the
    // per-call allocation path); each worker owns a disjoint chunk of blocks.
    let mut hn: Vec<(&mut Matrix, &mut Matrix)> =
        h.iter_mut().zip(num_ws.iter_mut()).collect();
    cppll_par::parallel_chunks_mut(&mut hn, threads, |lo, chunk| {
        for (k, (hj, num)) in chunk.iter_mut().enumerate() {
            let j = lo + k;
            it.x[j].matmul_into(&rd[j], num);
            if let Some(c) = corr {
                num.axpy(1.0, &c[j]);
            }
            num.matmul_into(&work[j].s_inv, hj);
            for v in hj.as_mut_slice() {
                *v = -*v;
            }
            hj.axpy(-1.0, &it.x[j]);
            if sigma != 0.0 {
                hj.axpy(sigma * mu, &work[j].s_inv);
            }
        }
    });
    drop(hn);

    // RHS: r1ᵢ = rpᵢ − Σⱼ ⟨A_{ij}, Hⱼ⟩  (⟨·,·⟩ against the non-symmetric H).
    let mut rhs = vec![0.0; m + nfree];
    rhs[..m].copy_from_slice(rp);
    for (j, hj) in h.iter().enumerate() {
        for &i in &touching[j] {
            let a_ij = constraint_block(p, i, j);
            rhs[i] -= a_ij.dot_general(hj);
        }
    }
    rhs[m..].copy_from_slice(rf);

    let sol = kkt.solve(&rhs);
    let dy = sol[..m].to_vec();
    let du = sol[m..].to_vec();

    // dSⱼ = Rdⱼ − Σᵢ dyᵢ A_{ij};  dXⱼ = Hⱼ + Xⱼ (Σᵢ dyᵢ A_{ij}) Sⱼ⁻¹.
    let h = &*h;
    let dy_ref = &dy;
    let blocks: Vec<(Matrix, Matrix)> = cppll_par::parallel_map(nblocks, threads, |j| {
        let n = it.x[j].nrows();
        let mut pj = Matrix::zeros(n, n);
        for &i in &touching[j] {
            if dy_ref[i] == 0.0 {
                continue;
            }
            constraint_block(p, i, j).add_scaled_into(dy_ref[i], &mut pj);
        }
        let dsj = rd[j].sub(&pj);
        let mut dxj = it.x[j].matmul(&pj).matmul(&work[j].s_inv);
        dxj.axpy(1.0, &h[j]);
        dxj.symmetrize();
        (dxj, dsj)
    });
    let mut dx = Vec::with_capacity(nblocks);
    let mut ds = Vec::with_capacity(nblocks);
    for (dxj, dsj) in blocks {
        dx.push(dxj);
        ds.push(dsj);
    }
    Direction { dx, ds, dy, du }
}

/// Maximum primal/dual step lengths keeping `X, S ≻ 0`, scaled by `tau`.
///
/// The per-block eigenvalue computations run in parallel; the min-reduction
/// happens serially in block order on the calling thread.
fn step_lengths(
    it: &Iterate,
    dir: &Direction,
    work: &[BlockWork],
    tau: f64,
    threads: usize,
) -> (f64, f64) {
    let steps: Vec<(f64, f64)> = cppll_par::parallel_map(it.x.len(), threads, |j| {
        (
            max_step(&work[j].chol_x, &dir.dx[j]),
            max_step(&work[j].chol_s, &dir.ds[j]),
        )
    });
    let mut ap: f64 = 1.0;
    let mut ad: f64 = 1.0;
    for &(sx, ss) in &steps {
        ap = ap.min(tau * sx);
        ad = ad.min(tau * ss);
    }
    (ap.min(1.0), ad.min(1.0))
}

/// Largest `α` with `M + α D ⪰ 0` given the Cholesky factor of `M ≻ 0`:
/// `α = −1/λ_min(L⁻¹ D L⁻ᵀ)` when the minimum eigenvalue is negative.
fn max_step(chol: &Cholesky, d: &Matrix) -> f64 {
    let w = chol.whiten(d);
    let lmin = w.symmetric_eigen().min_eigenvalue();
    if lmin >= -1e-14 {
        f64::INFINITY
    } else {
        -1.0 / lmin
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SdpProblem;

    fn opts() -> SolverOptions {
        SolverOptions::default()
    }

    #[test]
    fn min_trace_with_diag_constraints() {
        // min tr X s.t. X11 = 1, X22 = 2 ⇒ optimum X = diag(1,2) (off-diag 0).
        let mut p = SdpProblem::new();
        let b = p.add_psd_block(2);
        p.set_block_cost_identity(b, 1.0);
        let c1 = p.add_constraint(1.0);
        p.set_entry(c1, b, 0, 0, 1.0);
        let c2 = p.add_constraint(2.0);
        p.set_entry(c2, b, 1, 1, 1.0);
        let sol = p.solve(&opts());
        assert!(sol.is_ok(), "{sol}");
        assert!((sol.primal_objective - 3.0).abs() < 1e-5, "{sol}");
        assert!(sol.x[0][(0, 1)].abs() < 1e-4);
    }

    #[test]
    fn max_eigenvalue_lmi() {
        // max y s.t. A − y I ⪰ 0 where A = [[2,1],[1,2]] ⇒ y* = λ_min(A) = 1.
        // Primal form: min ⟨A, X⟩ s.t. ⟨I, X⟩ = 1, X ⪰ 0.
        let mut p = SdpProblem::new();
        let b = p.add_psd_block(2);
        p.set_cost_entry(b, 0, 0, 2.0);
        p.set_cost_entry(b, 0, 1, 1.0);
        p.set_cost_entry(b, 1, 1, 2.0);
        let c = p.add_constraint(1.0);
        p.set_entry(c, b, 0, 0, 1.0);
        p.set_entry(c, b, 1, 1, 1.0);
        let sol = p.solve(&opts());
        assert!(sol.is_ok(), "{sol}");
        assert!((sol.primal_objective - 1.0).abs() < 1e-5, "{sol}");
        assert!((sol.dual_objective - 1.0).abs() < 1e-5, "{sol}");
    }

    #[test]
    fn free_variables_shift_solution() {
        // min tr X s.t. X11 + u = 3, X22 - u = 1, X ⪰ 0, u free.
        // tr X = X11 + X22 = 4 - 0 (independent of u? X11 = 3-u, X22 = 1+u,
        // sum = 4) ⇒ optimum 4 with off-diagonals 0; u interior.
        let mut p = SdpProblem::new();
        let b = p.add_psd_block(2);
        p.set_block_cost_identity(b, 1.0);
        let u = p.add_free_var(0.0);
        let c1 = p.add_constraint(3.0);
        p.set_entry(c1, b, 0, 0, 1.0);
        p.set_free_coeff(c1, u, 1.0);
        let c2 = p.add_constraint(1.0);
        p.set_entry(c2, b, 1, 1, 1.0);
        p.set_free_coeff(c2, u, -1.0);
        let sol = p.solve(&opts());
        assert!(sol.is_ok(), "{sol}");
        assert!((sol.primal_objective - 4.0).abs() < 1e-4, "{sol}");
        // Feasibility of the returned point.
        let vals = p.constraint_values(&sol.x, &sol.free);
        assert!((vals[0] - 3.0).abs() < 1e-5);
        assert!((vals[1] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn two_blocks_couple_through_constraint() {
        // min tr X + tr Y s.t. X11 + Y11 = 2, X,Y ⪰ 0 (1x1 blocks ⇒ LP).
        let mut p = SdpProblem::new();
        let bx = p.add_psd_block(1);
        let by = p.add_psd_block(1);
        p.set_block_cost_identity(bx, 1.0);
        p.set_block_cost_identity(by, 3.0);
        let c = p.add_constraint(2.0);
        p.set_entry(c, bx, 0, 0, 1.0);
        p.set_entry(c, by, 0, 0, 1.0);
        let sol = p.solve(&opts());
        assert!(sol.is_ok(), "{sol}");
        // Cheaper to satisfy with X: objective 2.
        assert!((sol.primal_objective - 2.0).abs() < 1e-5, "{sol}");
        assert!(sol.x[1][(0, 0)] < 1e-4);
    }

    #[test]
    fn infeasible_problem_is_flagged() {
        // X11 = -1 with X ⪰ 0 is infeasible.
        let mut p = SdpProblem::new();
        let b = p.add_psd_block(1);
        p.set_block_cost_identity(b, 1.0);
        let c = p.add_constraint(-1.0);
        p.set_entry(c, b, 0, 0, 1.0);
        let sol = p.solve(&opts());
        assert!(
            !sol.is_ok(),
            "infeasible problem must not report success: {sol}"
        );
    }

    #[test]
    fn lovasz_theta_of_c5() {
        // ϑ(C₅) = √5 — a classic SDP test instance.
        // max ⟨J, X⟩ s.t. tr X = 1, X_{ij} = 0 for edges (i,i+1 mod 5), X ⪰ 0.
        // As a min problem: min ⟨-J, X⟩.
        let mut p = SdpProblem::new();
        let b = p.add_psd_block(5);
        for r in 0..5 {
            for c in r..5 {
                p.set_cost_entry(b, r, c, -1.0);
            }
        }
        let t = p.add_constraint(1.0);
        for i in 0..5 {
            p.set_entry(t, b, i, i, 1.0);
        }
        for i in 0..5 {
            let e = p.add_constraint(0.0);
            p.set_entry(e, b, i, (i + 1) % 5, 1.0);
        }
        let sol = p.solve(&opts());
        assert!(sol.is_ok(), "{sol}");
        let theta = -sol.primal_objective;
        assert!(
            (theta - 5.0_f64.sqrt()).abs() < 1e-4,
            "theta = {theta}, expected sqrt(5)"
        );
    }
}
