// Index-based loops over matrix rows/columns mirror the textbook
// formulations of the algorithms and keep row/column symmetry visible.
#![allow(clippy::needless_range_loop)]

//! A primal–dual interior-point semidefinite programming (SDP) solver.
//!
//! This crate replaces the MATLAB/YALMIP + SeDuMi stack used by the paper.
//! It solves problems in the block standard form
//!
//! ```text
//! minimise    Σⱼ ⟨Cⱼ, Xⱼ⟩ + fᵀu
//! subject to  Σⱼ ⟨A_{ij}, Xⱼ⟩ + (B u)_i = b_i     (i = 1..m)
//!             Xⱼ ⪰ 0,  u ∈ ℝᶠ free
//! ```
//!
//! which is exactly the shape produced by Gram-matrix reformulations of
//! sum-of-squares constraints (`cppll-sos`): the `Xⱼ` are Gram matrices and
//! `u` collects coefficients of decision polynomials.
//!
//! # Algorithm
//!
//! Infeasible-start primal–dual interior-point method with the HKM search
//! direction and Mehrotra predictor–corrector:
//!
//! * the Schur complement `M_{ik} = Σⱼ tr(A_{ij} Sⱼ⁻¹ A_{kj} Xⱼ)` is formed
//!   per block over the constraints touching that block;
//! * free variables are kept *exactly* (no difference-splitting) through the
//!   quasidefinite KKT system `[[M, B], [Bᵀ, −δI]]`, factored by LDLᵀ;
//! * step lengths come from exact minimum-eigenvalue computations of the
//!   scaled directions (Jacobi), with a fraction-to-boundary factor.
//!
//! # Examples
//!
//! Minimise `tr(X)` subject to `X₁₁ + X₂₂ = 2`, `X₁₂ = 0.5`:
//!
//! ```
//! use cppll_sdp::{SdpProblem, SdpStatus};
//!
//! let mut p = SdpProblem::new();
//! let blk = p.add_psd_block(2);
//! p.set_block_cost_identity(blk, 1.0);
//! let c1 = p.add_constraint(2.0);
//! p.set_entry(c1, blk, 0, 0, 1.0);
//! p.set_entry(c1, blk, 1, 1, 1.0);
//! let c2 = p.add_constraint(0.5);
//! p.set_entry(c2, blk, 0, 1, 1.0);
//! let sol = p.solve(&Default::default());
//! assert_eq!(sol.status, SdpStatus::Optimal);
//! assert!((sol.primal_objective - 2.0).abs() < 1e-5);
//! ```

mod fault;
mod problem;
mod solution;
mod solver;
mod sparse;

pub use fault::{CrashMode, FaultInjector, FaultKind, FaultPlan, JournalFault};
pub use problem::{BlockId, ConstraintId, FreeVarId, SdpProblem};
pub use solution::{SdpSolution, SdpStatus, SolveTimings};
pub use solver::{default_kkt_mode, set_default_kkt_mode, KktMode, SolverOptions};
pub use sparse::SymSparse;

#[doc(hidden)]
pub use solver::{assemble_schur_dense_for_tests, assemble_schur_for_tests};
