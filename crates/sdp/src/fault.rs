//! Deterministic fault injection for the interior-point solver.
//!
//! Robustness machinery (retry policies, graceful pipeline degradation) is
//! only trustworthy if its failure paths are exercised. Real numerical
//! failures are hard to provoke on demand, so this module lets tests force
//! them: a [`FaultInjector`] attached to
//! [`SolverOptions::fault`](crate::SolverOptions) makes chosen solves
//! terminate with [`SdpStatus::Stalled`] or [`SdpStatus::MaxIterations`]
//! after their first iteration (the iterate and residuals at that point are
//! real, so downstream diagnostics see plausible data).
//!
//! Faults are selected by a [`FaultPlan`] from the injector's view of the
//! run: a global solve-call counter, the retry attempt number (set by the
//! solve supervisor in `cppll-sos`), and the pipeline stage name (set by the
//! verification pipeline in `cppll-verify`). All state lives behind a mutex,
//! so one injector can be shared across the whole pipeline.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Mutex;

use crate::solution::SdpStatus;

/// Which failure a fault simulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Collapsed step lengths: the solve reports [`SdpStatus::Stalled`].
    Stall,
    /// Iteration-budget exhaustion: [`SdpStatus::MaxIterations`].
    MaxIterations,
    /// A failed Cholesky factorisation of an iterate block; surfaces as
    /// [`SdpStatus::Stalled`], exactly like the real failure path.
    Cholesky,
}

impl FaultKind {
    /// The status the faulted solve reports.
    pub fn status(self) -> SdpStatus {
        match self {
            FaultKind::Stall | FaultKind::Cholesky => SdpStatus::Stalled,
            FaultKind::MaxIterations => SdpStatus::MaxIterations,
        }
    }
}

/// How an injected crash terminates the process.
///
/// Unlike [`FaultKind`] faults — which make a solve *fail* and exercise the
/// retry machinery — a crash kills the process mid-pipeline, exercising the
/// checkpoint/resume machinery in `cppll-verify`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashMode {
    /// `panic!` on the solving thread. In-process tests run the pipeline on
    /// a spawned thread and observe the crash as a `join` error.
    Panic,
    /// `std::process::exit` with this code. Used by the CLI's
    /// `--inject-crash` flag so CI can kill and resume a real process.
    Exit(i32),
    /// Hang forever: the solving thread enters an infinite sleep loop and
    /// never returns. Only meaningful inside a supervised worker process —
    /// the `cppll-harness` watchdog must detect the stall and SIGKILL the
    /// worker. Never use in-process: the test would hang with it.
    Hang,
}

impl CrashMode {
    /// Executes the crash. Never returns except for the unreachable
    /// fall-through the compiler needs.
    fn execute(self, context: &str) -> ! {
        match self {
            CrashMode::Panic => panic!("injected crash: {context}"),
            CrashMode::Exit(code) => std::process::exit(code),
            CrashMode::Hang => loop {
                std::thread::sleep(std::time::Duration::from_secs(1));
            },
        }
    }
}

/// A fault injected into a *journal append* rather than an SDP solve:
/// storage failing underneath the checkpoint layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JournalFault {
    /// The append fails with `ENOSPC` (disk full) before writing anything.
    /// The journal on disk stays exactly as it was — valid — and the
    /// pipeline surfaces a checkpoint I/O error.
    Enospc,
    /// A torn write: only the first `keep_bytes` bytes of the framed record
    /// reach the disk, then the process dies per `then` — the simulation of
    /// power loss mid-append. Resume must recover by truncating the torn
    /// tail.
    TornWrite {
        /// Bytes of the framed line actually written.
        keep_bytes: usize,
        /// How the process dies after the partial write.
        then: CrashMode,
    },
}

/// Declarative schedule of which solves fail and how.
///
/// Triggers are checked in the order: crash triggers (exact call index,
/// then per-stage solve index), exact call index, first-attempt, stage
/// match, first-solve-per-stage. The `budget` caps the total number of
/// injected [`FaultKind`] faults; crashes ignore the budget (a crash is a
/// process death, not a failed solve).
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Fault the solve with this global call index (0-based, counted across
    /// every SDP solve that sees the injector).
    at_call: BTreeMap<usize, FaultKind>,
    /// Fault every solve whose supervisor attempt number is 0.
    on_first_attempt: Option<FaultKind>,
    /// Fault every solve (every attempt) while the pipeline stage matches
    /// one of these names.
    at_stage: Vec<(String, FaultKind)>,
    /// Fault the first attempt of the first solve in each distinct stage.
    first_solve_per_stage: Option<FaultKind>,
    /// Maximum number of faults to inject in total.
    budget: Option<usize>,
    /// Crash the process when the solve with this global call index starts.
    crash_at_call: BTreeMap<usize, CrashMode>,
    /// Crash the process when the `nth` (0-based) solve within the named
    /// pipeline stage starts.
    crash_at_stage: Vec<(String, usize, CrashMode)>,
    /// Inject a storage fault into the `nth` (0-based) journal append.
    journal_at_append: BTreeMap<usize, JournalFault>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Faults the solve with global call index `index`.
    #[must_use]
    pub fn fault_at_call(mut self, index: usize, kind: FaultKind) -> Self {
        self.at_call.insert(index, kind);
        self
    }

    /// Faults the first attempt of every supervised solve.
    #[must_use]
    pub fn fault_on_first_attempt(mut self, kind: FaultKind) -> Self {
        self.on_first_attempt = Some(kind);
        self
    }

    /// Faults every solve that runs while the pipeline stage is `stage`,
    /// including retries — the stage stays broken no matter how often the
    /// supervisor retries.
    #[must_use]
    pub fn fault_at_stage(mut self, stage: impl Into<String>, kind: FaultKind) -> Self {
        self.at_stage.push((stage.into(), kind));
        self
    }

    /// Faults the first attempt of the first solve in each distinct stage;
    /// retries (and later solves in the same stage) succeed.
    #[must_use]
    pub fn fault_first_solve_per_stage(mut self, kind: FaultKind) -> Self {
        self.first_solve_per_stage = Some(kind);
        self
    }

    /// Caps the total number of injected faults.
    #[must_use]
    pub fn with_budget(mut self, budget: usize) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Crashes the process when the solve with global call index `index`
    /// starts (before any iteration runs, so everything journaled up to
    /// that point is consistent).
    #[must_use]
    pub fn crash_at_call(mut self, index: usize, mode: CrashMode) -> Self {
        self.crash_at_call.insert(index, mode);
        self
    }

    /// Crashes the process when the `nth` (0-based) solve in pipeline stage
    /// `stage` starts. Stage names follow the pipeline's announcements
    /// (`"lyapunov"`, `"levelset"`, `"advection"`, `"escape"`).
    #[must_use]
    pub fn crash_at_stage_solve(
        mut self,
        stage: impl Into<String>,
        nth: usize,
        mode: CrashMode,
    ) -> Self {
        self.crash_at_stage.push((stage.into(), nth, mode));
        self
    }

    /// Injects a storage fault into the `nth` (0-based) journal append.
    /// Appends are counted across the whole run, from the first stage record
    /// written after the header.
    #[must_use]
    pub fn fault_journal_append(mut self, nth: usize, fault: JournalFault) -> Self {
        self.journal_at_append.insert(nth, fault);
        self
    }
}

#[derive(Debug, Default)]
struct InjectorState {
    /// Solves observed so far (equals the next solve's call index).
    calls: usize,
    /// Faults injected so far.
    fired: usize,
    /// Current supervisor attempt number (0 = first attempt).
    attempt: usize,
    /// Current pipeline stage name.
    stage: String,
    /// Stages seen at least once (first-solve-per-stage bookkeeping: a
    /// stage whose first solve has been observed is not faulted again).
    seen_stages: BTreeSet<String>,
    /// Per-stage solve counters (crash-at-stage-solve bookkeeping).
    stage_calls: BTreeMap<String, usize>,
    /// Journal appends observed so far.
    journal_appends: usize,
}

/// Shared, thread-safe fault source polled once per SDP solve.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    state: Mutex<InjectorState>,
}

impl FaultInjector {
    /// Builds an injector for a plan.
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            plan,
            state: Mutex::new(InjectorState::default()),
        }
    }

    /// Records the supervisor attempt number for subsequent solves.
    pub fn set_attempt(&self, attempt: usize) {
        self.state.lock().expect("injector lock").attempt = attempt;
    }

    /// Records the pipeline stage for subsequent solves.
    pub fn set_stage(&self, stage: &str) {
        self.state.lock().expect("injector lock").stage = stage.to_string();
    }

    /// Called by the solver at the start of each solve: decides whether this
    /// solve is faulted, and with which failure.
    pub fn poll(&self) -> Option<FaultKind> {
        let mut st = self.state.lock().expect("injector lock");
        let index = st.calls;
        st.calls += 1;
        let stage = st.stage.clone();
        let stage_index = {
            let c = st.stage_calls.entry(stage.clone()).or_insert(0);
            let i = *c;
            *c += 1;
            i
        };
        let first_in_stage = st.seen_stages.insert(stage.clone());

        let crash = self.plan.crash_at_call.get(&index).copied().or_else(|| {
            self.plan
                .crash_at_stage
                .iter()
                .find(|(name, nth, _)| *name == stage && *nth == stage_index)
                .map(|&(_, _, mode)| mode)
        });
        if let Some(mode) = crash {
            // Release the lock before dying so a Panic-mode crash caught by a
            // test harness does not leave the injector's mutex poisoned while
            // the guard unwinds.
            drop(st);
            mode.execute(&format!(
                "solve call {index} (stage '{stage}', stage solve {stage_index})"
            ));
        }

        if let Some(budget) = self.plan.budget {
            if st.fired >= budget {
                return None;
            }
        }
        let kind = if let Some(&k) = self.plan.at_call.get(&index) {
            Some(k)
        } else if st.attempt == 0 && self.plan.on_first_attempt.is_some() {
            self.plan.on_first_attempt
        } else if let Some(&(_, k)) = self
            .plan
            .at_stage
            .iter()
            .find(|(name, _)| *name == st.stage)
        {
            Some(k)
        } else if st.attempt == 0 && first_in_stage && self.plan.first_solve_per_stage.is_some() {
            self.plan.first_solve_per_stage
        } else {
            None
        };
        if kind.is_some() {
            st.fired += 1;
        }
        kind
    }

    /// Called by the checkpoint layer before each journal append: decides
    /// whether this append suffers an injected storage fault. Panic- and
    /// exit-mode torn writes are executed by the caller *after* the partial
    /// write, so the fault is returned rather than acted on here.
    pub fn poll_journal_append(&self) -> Option<JournalFault> {
        let mut st = self.state.lock().expect("injector lock");
        let index = st.journal_appends;
        st.journal_appends += 1;
        self.plan.journal_at_append.get(&index).copied()
    }

    /// Executes the death half of a torn write, after the caller has
    /// persisted the partial record. Never returns.
    pub fn die(mode: CrashMode, context: &str) -> ! {
        mode.execute(context)
    }

    /// Total solves observed.
    pub fn calls(&self) -> usize {
        self.state.lock().expect("injector lock").calls
    }

    /// Total faults injected.
    pub fn fired(&self) -> usize {
        self.state.lock().expect("injector lock").fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn at_call_faults_exactly_the_indexed_solves() {
        let inj = FaultInjector::new(
            FaultPlan::new()
                .fault_at_call(0, FaultKind::Stall)
                .fault_at_call(2, FaultKind::MaxIterations),
        );
        assert_eq!(inj.poll(), Some(FaultKind::Stall));
        assert_eq!(inj.poll(), None);
        assert_eq!(inj.poll(), Some(FaultKind::MaxIterations));
        assert_eq!(inj.poll(), None);
        assert_eq!(inj.calls(), 4);
        assert_eq!(inj.fired(), 2);
    }

    #[test]
    fn first_attempt_faults_clear_on_retry() {
        let inj = FaultInjector::new(FaultPlan::new().fault_on_first_attempt(FaultKind::Stall));
        inj.set_attempt(0);
        assert_eq!(inj.poll(), Some(FaultKind::Stall));
        inj.set_attempt(1);
        assert_eq!(inj.poll(), None);
        inj.set_attempt(0);
        assert_eq!(inj.poll(), Some(FaultKind::Stall));
    }

    #[test]
    fn stage_faults_persist_across_attempts() {
        let inj =
            FaultInjector::new(FaultPlan::new().fault_at_stage("advection", FaultKind::Stall));
        inj.set_stage("lyapunov");
        assert_eq!(inj.poll(), None);
        inj.set_stage("advection");
        inj.set_attempt(0);
        assert_eq!(inj.poll(), Some(FaultKind::Stall));
        inj.set_attempt(3);
        assert_eq!(inj.poll(), Some(FaultKind::Stall));
        inj.set_stage("escape");
        assert_eq!(inj.poll(), None);
    }

    #[test]
    fn first_solve_per_stage_fires_once_per_stage() {
        let inj =
            FaultInjector::new(FaultPlan::new().fault_first_solve_per_stage(FaultKind::Stall));
        inj.set_stage("lyapunov");
        inj.set_attempt(0);
        assert_eq!(inj.poll(), Some(FaultKind::Stall));
        inj.set_attempt(1); // retry of the same solve succeeds
        assert_eq!(inj.poll(), None);
        inj.set_attempt(0); // later solve in the same stage succeeds
        assert_eq!(inj.poll(), None);
        inj.set_stage("levelset"); // next stage faults again
        assert_eq!(inj.poll(), Some(FaultKind::Stall));
        assert_eq!(inj.fired(), 2);
    }

    #[test]
    fn budget_caps_total_faults() {
        let inj = FaultInjector::new(
            FaultPlan::new()
                .fault_on_first_attempt(FaultKind::Stall)
                .with_budget(2),
        );
        assert_eq!(inj.poll(), Some(FaultKind::Stall));
        assert_eq!(inj.poll(), Some(FaultKind::Stall));
        assert_eq!(inj.poll(), None);
        assert_eq!(inj.fired(), 2);
    }

    #[test]
    fn crash_at_call_panics_on_the_indexed_solve() {
        let inj = FaultInjector::new(FaultPlan::new().crash_at_call(1, CrashMode::Panic));
        assert_eq!(inj.poll(), None);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| inj.poll()));
        assert!(err.is_err(), "second solve should crash");
        // The lock was released before panicking, so the injector keeps
        // working for the (resumed) process.
        assert_eq!(inj.poll(), None);
        assert_eq!(inj.calls(), 3);
    }

    #[test]
    fn crash_at_stage_solve_counts_solves_per_stage() {
        let inj = FaultInjector::new(FaultPlan::new().crash_at_stage_solve(
            "advection",
            2,
            CrashMode::Panic,
        ));
        inj.set_stage("lyapunov");
        assert_eq!(inj.poll(), None);
        assert_eq!(inj.poll(), None);
        inj.set_stage("advection");
        assert_eq!(inj.poll(), None); // stage solve 0
        assert_eq!(inj.poll(), None); // stage solve 1
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| inj.poll()));
        assert!(err.is_err(), "third advection solve should crash");
    }

    #[test]
    fn journal_append_faults_fire_on_the_indexed_append() {
        let inj = FaultInjector::new(
            FaultPlan::new()
                .fault_journal_append(1, JournalFault::Enospc)
                .fault_journal_append(
                    3,
                    JournalFault::TornWrite {
                        keep_bytes: 7,
                        then: CrashMode::Panic,
                    },
                ),
        );
        assert_eq!(inj.poll_journal_append(), None);
        assert_eq!(inj.poll_journal_append(), Some(JournalFault::Enospc));
        assert_eq!(inj.poll_journal_append(), None);
        assert_eq!(
            inj.poll_journal_append(),
            Some(JournalFault::TornWrite {
                keep_bytes: 7,
                then: CrashMode::Panic,
            })
        );
        // Journal appends do not advance the solve-call counter.
        assert_eq!(inj.calls(), 0);
    }

    #[test]
    fn kinds_map_to_the_right_statuses() {
        assert_eq!(FaultKind::Stall.status(), SdpStatus::Stalled);
        assert_eq!(FaultKind::Cholesky.status(), SdpStatus::Stalled);
        assert_eq!(FaultKind::MaxIterations.status(), SdpStatus::MaxIterations);
        assert!(FaultKind::Stall.status().is_retryable());
        assert!(FaultKind::MaxIterations.status().is_retryable());
    }
}
