//! Sparse symmetric matrices used for SDP constraint data.

use cppll_linalg::Matrix;

/// A sparse **symmetric** matrix stored as upper-triangle `(row, col, val)`
/// triples with `row ≤ col`; the mirrored entry is implicit.
///
/// Setting the same entry twice *accumulates* the values, matching the way
/// coefficient-matching constraints are assembled monomial by monomial.
///
/// # Examples
///
/// ```
/// use cppll_sdp::SymSparse;
///
/// let mut a = SymSparse::new(2);
/// a.add(0, 1, 3.0); // also sets (1, 0)
/// let d = a.to_dense();
/// assert_eq!(d[(1, 0)], 3.0);
/// ```
#[derive(Debug, Clone)]
pub struct SymSparse {
    dim: usize,
    /// Upper-triangle entries `(r, c, v)` with `r ≤ c`, sorted, deduplicated.
    entries: Vec<(usize, usize, f64)>,
    /// Whether `entries` is currently sorted/deduplicated.
    normalized: bool,
    /// Per-entry inner-product weights (`v` on the diagonal, `2v` off it),
    /// parallel to `entries`. Rebuilt by [`SymSparse::normalize`]; keeping
    /// the entry order makes the branch-free [`SymSparse::dot_dense`]
    /// bit-identical to the branchy loop it replaces.
    scaled: Vec<f64>,
    /// Flattened `(column-major index, weight)` terms for
    /// [`SymSparse::dot_general`]: one term per diagonal entry, two per
    /// off-diagonal entry (both transpose positions), in entry order. The
    /// term order and per-term accumulation match the branchy loop exactly,
    /// so the fast path is bit-identical to it.
    general: Vec<(usize, f64)>,
}

/// Caches are derived data: equality is defined on the logical matrix only.
impl PartialEq for SymSparse {
    fn eq(&self, other: &Self) -> bool {
        self.dim == other.dim
            && self.entries == other.entries
            && self.normalized == other.normalized
    }
}

impl SymSparse {
    /// Creates an empty (zero) symmetric matrix of dimension `dim`.
    pub fn new(dim: usize) -> Self {
        SymSparse {
            dim,
            entries: Vec::new(),
            normalized: true,
            scaled: Vec::new(),
            general: Vec::new(),
        }
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// `true` when no entries have been added.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Adds `v` to entry `(r, c)` (and symmetrically `(c, r)`).
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn add(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.dim && c < self.dim, "index out of range");
        if v == 0.0 {
            return;
        }
        let (r, c) = if r <= c { (r, c) } else { (c, r) };
        self.entries.push((r, c, v));
        self.normalized = false;
    }

    /// Sorts and merges duplicate entries; drops exact zeros.
    pub fn normalize(&mut self) {
        if self.normalized {
            return;
        }
        self.entries.sort_by_key(|a| (a.0, a.1));
        let mut merged: Vec<(usize, usize, f64)> = Vec::with_capacity(self.entries.len());
        for &(r, c, v) in &self.entries {
            if let Some(last) = merged.last_mut() {
                if last.0 == r && last.1 == c {
                    last.2 += v;
                    continue;
                }
            }
            merged.push((r, c, v));
        }
        merged.retain(|&(_, _, v)| v != 0.0);
        self.entries = merged;
        self.normalized = true;
        self.rebuild_caches();
    }

    /// Rebuilds the derived inner-product caches from `entries`.
    fn rebuild_caches(&mut self) {
        self.scaled.clear();
        self.general.clear();
        let n = self.dim;
        for &(r, c, v) in &self.entries {
            // `t[(c, r)]` at column-major index `r·n + c`, then — off the
            // diagonal — `t[(r, c)]` at `c·n + r`, mirroring the branchy
            // `dot_general` loop term for term.
            self.general.push((r * n + c, v));
            if r == c {
                self.scaled.push(v);
            } else {
                self.scaled.push(2.0 * v);
                self.general.push((c * n + r, v));
            }
        }
    }

    /// Upper-triangle entries (normalizing first).
    pub fn entries(&mut self) -> &[(usize, usize, f64)] {
        self.normalize();
        &self.entries
    }

    /// Upper-triangle entries without normalizing (may contain duplicates
    /// if [`SymSparse::normalize`] has not run since the last `add`).
    pub fn raw_entries(&self) -> &[(usize, usize, f64)] {
        &self.entries
    }

    /// Densifies to a full symmetric [`Matrix`].
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.dim, self.dim);
        for &(r, c, v) in &self.entries {
            m[(r, c)] += v;
            if r != c {
                m[(c, r)] += v;
            }
        }
        m
    }

    /// Frobenius inner product `⟨self, X⟩` with a dense symmetric matrix.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ. Requires normalized entries for
    /// correctness with duplicate adds — call sites inside the solver
    /// normalize once during presolve.
    pub fn dot_dense(&self, x: &Matrix) -> f64 {
        debug_assert_eq!(x.nrows(), self.dim);
        if self.normalized && self.scaled.len() == self.entries.len() {
            // Branch-free fast path: the weight (v or 2v) is precomputed per
            // entry, and the entry order is unchanged, so the accumulation
            // is bit-identical to the branchy fallback below.
            let mut acc = 0.0;
            for (&(r, c, _), &w) in self.entries.iter().zip(&self.scaled) {
                acc += w * x[(r, c)];
            }
            return acc;
        }
        let mut acc = 0.0;
        for &(r, c, v) in &self.entries {
            if r == c {
                acc += v * x[(r, c)];
            } else {
                acc += 2.0 * v * x[(r, c)];
            }
        }
        acc
    }

    /// Frobenius inner product `⟨self, T⟩` where `T` is a dense matrix that
    /// is **not** assumed symmetric (the solver's `T = S⁻¹ A X` products):
    /// `Σ_rc v·(T_cr + T_rc)` with each transpose position accumulated as
    /// its own term. The fast path walks the pre-flattened `(index, weight)`
    /// cache — no per-entry branch, bit-identical to the fallback loop.
    ///
    /// Note only the columns of `T` indexed by this matrix's
    /// [`SymSparse::support`] are ever read — the basis for the solver's
    /// active-column Schur workspaces.
    ///
    /// # Panics
    ///
    /// Debug-panics if dimensions differ. Requires the matrix to be
    /// normalized (solver data always is after presolve); falls back to a
    /// branchy loop over raw entries otherwise.
    pub fn dot_general(&self, t: &Matrix) -> f64 {
        debug_assert_eq!(t.nrows(), self.dim);
        debug_assert_eq!(t.ncols(), self.dim);
        if self.normalized {
            return self.dot_general_slice(t.as_slice());
        }
        let mut acc = 0.0;
        for &(r, c, v) in &self.entries {
            acc += v * t[(c, r)];
            if r != c {
                acc += v * t[(r, c)];
            }
        }
        acc
    }

    /// [`SymSparse::dot_general`] against a raw column-major `dim × dim`
    /// slice — the solver's flat per-iteration workspaces skip the `Matrix`
    /// wrapper entirely. Requires a normalized matrix.
    ///
    /// # Panics
    ///
    /// Debug-panics when not normalized or when the slice is too short.
    pub fn dot_general_slice(&self, data: &[f64]) -> f64 {
        debug_assert!(self.normalized, "dot_general_slice needs normalized entries");
        debug_assert!(data.len() >= self.dim * self.dim);
        let mut acc = 0.0;
        for &(idx, w) in &self.general {
            acc += w * data[idx];
        }
        acc
    }

    /// Sorted, deduplicated list of indices touched by any entry (row or
    /// column support — identical by symmetry). This is the *symbolic* shape
    /// the solver's Schur precompute works from.
    pub fn support(&self) -> Vec<usize> {
        let mut s: Vec<usize> = Vec::with_capacity(self.entries.len() * 2);
        for &(r, c, _) in &self.entries {
            s.push(r);
            s.push(c);
        }
        s.sort_unstable();
        s.dedup();
        s
    }

    /// Smallest index in the support, or `None` for a zero matrix. Rows
    /// above this index of any product `self · X` are structurally zero —
    /// the solver starts its triangular solves there.
    pub fn min_support(&self) -> Option<usize> {
        self.entries.iter().map(|&(r, _, _)| r).min()
    }

    /// In-place `y += s · self` into a dense matrix.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn add_scaled_into(&self, s: f64, y: &mut Matrix) {
        debug_assert_eq!(y.nrows(), self.dim);
        for &(r, c, v) in &self.entries {
            y[(r, c)] += s * v;
            if r != c {
                y[(c, r)] += s * v;
            }
        }
    }

    /// Dense product `self · X` (self symmetric sparse, `X` dense).
    ///
    /// # Panics
    ///
    /// Panics if `x.nrows() != self.dim()`.
    pub fn mul_dense(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.nrows(), self.dim, "dimension mismatch");
        let mut out = Matrix::zeros(self.dim, x.ncols());
        for &(r, c, v) in &self.entries {
            for j in 0..x.ncols() {
                out[(r, j)] += v * x[(c, j)];
                if r != c {
                    out[(c, j)] += v * x[(r, j)];
                }
            }
        }
        out
    }

    /// Sparse product `self · X` restricted to the given columns of `X`,
    /// written into a flat column-major `dim × x.ncols()` workspace. Each
    /// requested column is zero-filled (exact `+0.0`) and then accumulated
    /// in entry order — per target entry this is the same addition sequence
    /// as [`SymSparse::mul_dense`], so the written columns are bit-identical
    /// to the full product's. Columns *not* listed are left untouched.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch or an out-of-range column index.
    pub fn mul_dense_cols_into(&self, x: &Matrix, cols: &[usize], out: &mut [f64]) {
        let n = self.dim;
        assert_eq!(x.nrows(), n, "dimension mismatch");
        assert!(out.len() >= n * x.ncols(), "workspace too small");
        for &j in cols {
            let xcol = x.col(j);
            let ocol = &mut out[j * n..(j + 1) * n];
            ocol.fill(0.0);
            for &(r, c, v) in &self.entries {
                ocol[r] += v * xcol[c];
                if r != c {
                    ocol[c] += v * xcol[r];
                }
            }
        }
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f64 {
        let mut acc = 0.0;
        for &(r, c, v) in &self.entries {
            acc += if r == c { v * v } else { 2.0 * v * v };
        }
        acc.sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_round_trip() {
        let mut a = SymSparse::new(3);
        a.add(0, 1, 2.0);
        a.add(2, 2, -1.0);
        a.add(1, 0, 0.5); // accumulates with (0,1)
        a.normalize();
        let d = a.to_dense();
        assert_eq!(d[(0, 1)], 2.5);
        assert_eq!(d[(1, 0)], 2.5);
        assert_eq!(d[(2, 2)], -1.0);
    }

    #[test]
    fn dot_matches_dense() {
        let mut a = SymSparse::new(2);
        a.add(0, 0, 1.0);
        a.add(0, 1, 2.0);
        a.normalize();
        let x = Matrix::from_rows(&[&[3.0, 1.0], &[1.0, 4.0]]);
        assert_eq!(a.dot_dense(&x), a.to_dense().dot(&x));
    }

    #[test]
    fn mul_dense_matches() {
        let mut a = SymSparse::new(2);
        a.add(0, 1, 1.0);
        a.add(1, 1, 2.0);
        a.normalize();
        let x = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let got = a.mul_dense(&x);
        let want = a.to_dense().matmul(&x);
        assert!(got.sub(&want).norm() < 1e-14);
    }

    #[test]
    fn dot_general_matches_dense_trace() {
        let mut a = SymSparse::new(3);
        a.add(0, 1, 1.5);
        a.add(2, 2, -2.0);
        a.add(0, 0, 0.5);
        // Non-symmetric T, as produced by the solver's S⁻¹AX products.
        let t = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0], &[7.0, 8.0, 9.0]]);
        let want = a.to_dense().matmul(&t).trace();
        // Un-normalized fallback and normalized fast path agree with tr(A·T).
        assert!((a.dot_general(&t) - want).abs() < 1e-12);
        a.normalize();
        assert!((a.dot_general(&t) - want).abs() < 1e-12);
    }

    #[test]
    fn support_and_min_support() {
        let mut a = SymSparse::new(5);
        assert!(a.support().is_empty());
        assert_eq!(a.min_support(), None);
        a.add(3, 1, 1.0);
        a.add(4, 4, 2.0);
        a.normalize();
        assert_eq!(a.support(), vec![1, 3, 4]);
        assert_eq!(a.min_support(), Some(1));
    }

    #[test]
    fn mul_dense_cols_matches_full_product_bitwise() {
        let mut a = SymSparse::new(3);
        a.add(0, 1, 1.25);
        a.add(1, 1, -2.0);
        a.add(2, 0, 0.5);
        a.normalize();
        let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0], &[7.0, 8.0, 9.0]]);
        let full = a.mul_dense(&x);
        let mut ws = vec![f64::NAN; 9];
        a.mul_dense_cols_into(&x, &[0, 2], &mut ws);
        for &j in &[0usize, 2] {
            for r in 0..3 {
                assert_eq!(ws[j * 3 + r].to_bits(), full[(r, j)].to_bits());
            }
        }
        // The unrequested column stays untouched.
        assert!(ws[3..6].iter().all(|v| v.is_nan()));
    }

    #[test]
    fn norm_counts_mirror() {
        let mut a = SymSparse::new(2);
        a.add(0, 1, 3.0);
        a.normalize();
        assert!((a.norm() - (18.0f64).sqrt()).abs() < 1e-14);
    }
}
