//! Property-based tests: `BigInt` is a commutative ring, `Rational` is an
//! ordered field, conversions from `f64` are exact, and the exact PSD test
//! agrees with floating-point Cholesky away from the boundary.

use cppll_exact::{BigInt, Rational, RationalMatrix};
use cppll_linalg::Matrix;
use proptest::prelude::*;

fn big(v: i64) -> BigInt {
    BigInt::from(v)
}

fn rat(n: i64, d: i64) -> Rational {
    Rational::new(BigInt::from(n), BigInt::from(d))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn bigint_ring_axioms(a in -1_000_000_000i64..1_000_000_000,
                          b in -1_000_000_000i64..1_000_000_000,
                          c in -1_000_000_000i64..1_000_000_000) {
        let (ba, bb, bc) = (big(a), big(b), big(c));
        prop_assert_eq!(ba.add(&bb), bb.add(&ba));
        prop_assert_eq!(ba.mul(&bb), bb.mul(&ba));
        prop_assert_eq!(ba.add(&bb).add(&bc), ba.add(&bb.add(&bc)));
        prop_assert_eq!(ba.mul(&bb).mul(&bc), ba.mul(&bb.mul(&bc)));
        prop_assert_eq!(ba.mul(&bb.add(&bc)), ba.mul(&bb).add(&ba.mul(&bc)));
        prop_assert_eq!(ba.sub(&ba), BigInt::zero());
        // Agreement with i128 arithmetic.
        prop_assert_eq!(ba.mul(&bb).to_f64(), (a as i128 * b as i128) as f64);
    }

    #[test]
    fn bigint_gcd_properties(a in 1i64..1_000_000_000, b in 1i64..1_000_000_000) {
        let g = big(a).gcd(&big(b));
        // g divides both (check via f64 magnitude of remainders using the
        // classic gcd identity instead: gcd(a,b) == gcd(b, a mod b) —
        // verified against i64 Euclid).
        fn euclid(mut a: i64, mut b: i64) -> i64 {
            while b != 0 {
                let t = a % b;
                a = b;
                b = t;
            }
            a
        }
        prop_assert_eq!(g, big(euclid(a, b)));
    }

    #[test]
    fn rational_field_axioms(an in -1000i64..1000, ad in 1i64..1000,
                             bn in -1000i64..1000, bd in 1i64..1000) {
        let a = rat(an, ad);
        let b = rat(bn, bd);
        prop_assert_eq!(a.add(&b), b.add(&a));
        prop_assert_eq!(a.mul(&b), b.mul(&a));
        prop_assert_eq!(a.sub(&a), Rational::zero());
        if !b.is_zero() {
            prop_assert_eq!(a.div(&b).mul(&b), a.clone());
        }
        // Distributivity over a third value.
        let c = rat(7, 3);
        let lhs = a.mul(&b.add(&c));
        let rhs = a.mul(&b).add(&a.mul(&c));
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn rational_order_is_total_and_compatible(an in -1000i64..1000, ad in 1i64..1000,
                                              bn in -1000i64..1000, bd in 1i64..1000) {
        let a = rat(an, ad);
        let b = rat(bn, bd);
        // Compare exactly as cross products.
        let exact = (an as i128 * bd as i128).cmp(&(bn as i128 * ad as i128));
        prop_assert_eq!(a.cmp(&b), exact);
        // Adding the same value preserves order.
        let c = rat(13, 7);
        prop_assert_eq!(a.add(&c).cmp(&b.add(&c)), exact);
    }

    #[test]
    fn f64_conversion_is_exact(v in -1.0e9f64..1.0e9) {
        let r = Rational::from_f64(v);
        // Round-trip through f64 must reproduce the input bit-exactly
        // (dyadic rationals inside f64 range convert without rounding).
        prop_assert_eq!(r.to_f64(), v);
        // Doubling commutes with conversion.
        let doubled = r.add(&r);
        prop_assert_eq!(doubled.to_f64(), 2.0 * v);
    }

    #[test]
    fn exact_psd_agrees_with_cholesky_off_boundary(
        seed in prop::collection::vec(-1.0f64..1.0, 9)
    ) {
        // A = B Bᵀ + I: safely PD; A − 3λmax I: safely indefinite.
        let b = Matrix::from_col_major(3, 3, seed);
        let mut a = b.matmul(&b.transpose());
        for i in 0..3 {
            a[(i, i)] += 1.0;
        }
        let ra = RationalMatrix::from_f64(&a);
        prop_assert!(ra.is_psd());
        let lmax = a.symmetric_eigen().max_eigenvalue();
        let mut ind = a.clone();
        for i in 0..3 {
            ind[(i, i)] -= 3.0 * lmax;
        }
        // Mixed signs on the diagonal after the shift ⇒ indefinite.
        let ri = RationalMatrix::from_f64(&ind);
        prop_assert!(!ri.is_psd());
    }

    #[test]
    fn round_to_is_nearest(v in -100.0f64..100.0, d in 1u64..10_000) {
        let r = Rational::from_f64(v);
        let rounded = r.round_to(d);
        let err = rounded.sub(&r).abs();
        // Error at most 1/(2d) + tiny slack for tie handling.
        let bound = Rational::new(BigInt::from(1i64), BigInt::from(2 * d as i64 - 1));
        prop_assert!(err <= bound.add(&Rational::new(BigInt::from(1i64), BigInt::from(d as i64))),
            "rounding error too large");
    }
}
