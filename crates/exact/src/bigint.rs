//! Arbitrary-precision signed integers, built from scratch.
//!
//! Only the operations the rational kernel needs: addition, subtraction,
//! multiplication, comparison, shifts, and binary GCD (no long division is
//! required anywhere in the crate — rational arithmetic divides by
//! inverting, and GCD uses the binary algorithm).

/// Sign of a [`BigInt`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Sign {
    Negative,
    Zero,
    Positive,
}

/// An arbitrary-precision signed integer (little-endian `u64` limbs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BigInt {
    sign: Sign,
    /// Magnitude limbs, least significant first; no trailing zeros.
    limbs: Vec<u64>,
}

impl BigInt {
    /// Zero.
    pub fn zero() -> Self {
        BigInt {
            sign: Sign::Zero,
            limbs: Vec::new(),
        }
    }

    /// One.
    pub fn one() -> Self {
        BigInt::from(1i64)
    }

    /// `true` iff the value is zero.
    pub fn is_zero(&self) -> bool {
        self.sign == Sign::Zero
    }

    /// `true` iff the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Negative
    }

    /// `true` iff the value is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.sign == Sign::Positive
    }

    /// Absolute value.
    pub fn abs(&self) -> BigInt {
        BigInt {
            sign: if self.is_zero() {
                Sign::Zero
            } else {
                Sign::Positive
            },
            limbs: self.limbs.clone(),
        }
    }

    /// Negation.
    pub fn neg(&self) -> BigInt {
        BigInt {
            sign: match self.sign {
                Sign::Negative => Sign::Positive,
                Sign::Zero => Sign::Zero,
                Sign::Positive => Sign::Negative,
            },
            limbs: self.limbs.clone(),
        }
    }

    fn from_limbs(sign: Sign, mut limbs: Vec<u64>) -> BigInt {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        if limbs.is_empty() {
            return BigInt::zero();
        }
        BigInt { sign, limbs }
    }

    /// Magnitude comparison `|self| ? |rhs|`.
    fn cmp_mag(&self, rhs: &BigInt) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        match self.limbs.len().cmp(&rhs.limbs.len()) {
            Ordering::Equal => {
                for (a, b) in self.limbs.iter().rev().zip(rhs.limbs.iter().rev()) {
                    match a.cmp(b) {
                        Ordering::Equal => continue,
                        other => return other,
                    }
                }
                Ordering::Equal
            }
            other => other,
        }
    }

    fn add_mag(a: &[u64], b: &[u64]) -> Vec<u64> {
        let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for i in 0..long.len() {
            let (s1, c1) = long[i].overflowing_add(*short.get(i).unwrap_or(&0));
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry > 0 {
            out.push(carry);
        }
        out
    }

    /// `a - b` for `|a| ≥ |b|`.
    fn sub_mag(a: &[u64], b: &[u64]) -> Vec<u64> {
        let mut out = Vec::with_capacity(a.len());
        let mut borrow = 0u64;
        for i in 0..a.len() {
            let bi = *b.get(i).unwrap_or(&0);
            let (d1, br1) = a[i].overflowing_sub(bi);
            let (d2, br2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = (br1 as u64) + (br2 as u64);
        }
        debug_assert_eq!(borrow, 0, "sub_mag requires |a| >= |b|");
        out
    }

    fn mul_mag(a: &[u64], b: &[u64]) -> Vec<u64> {
        if a.is_empty() || b.is_empty() {
            return Vec::new();
        }
        let mut out = vec![0u64; a.len() + b.len()];
        for (i, &ai) in a.iter().enumerate() {
            if ai == 0 {
                continue;
            }
            let mut carry = 0u128;
            for (j, &bj) in b.iter().enumerate() {
                let cur = out[i + j] as u128 + (ai as u128) * (bj as u128) + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + b.len();
            while carry > 0 {
                let cur = out[k] as u128 + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        out
    }

    /// Sum.
    pub fn add(&self, rhs: &BigInt) -> BigInt {
        use std::cmp::Ordering;
        match (self.sign, rhs.sign) {
            (Sign::Zero, _) => rhs.clone(),
            (_, Sign::Zero) => self.clone(),
            (a, b) if a == b => BigInt::from_limbs(a, Self::add_mag(&self.limbs, &rhs.limbs)),
            _ => match self.cmp_mag(rhs) {
                Ordering::Equal => BigInt::zero(),
                Ordering::Greater => {
                    BigInt::from_limbs(self.sign, Self::sub_mag(&self.limbs, &rhs.limbs))
                }
                Ordering::Less => {
                    BigInt::from_limbs(rhs.sign, Self::sub_mag(&rhs.limbs, &self.limbs))
                }
            },
        }
    }

    /// Difference.
    pub fn sub(&self, rhs: &BigInt) -> BigInt {
        self.add(&rhs.neg())
    }

    /// Product.
    pub fn mul(&self, rhs: &BigInt) -> BigInt {
        if self.is_zero() || rhs.is_zero() {
            return BigInt::zero();
        }
        let sign = if self.sign == rhs.sign {
            Sign::Positive
        } else {
            Sign::Negative
        };
        BigInt::from_limbs(sign, Self::mul_mag(&self.limbs, &rhs.limbs))
    }

    /// Left shift by `k` bits (magnitude).
    pub fn shl(&self, k: u32) -> BigInt {
        if self.is_zero() || k == 0 {
            return self.clone();
        }
        let limb_shift = (k / 64) as usize;
        let bit_shift = k % 64;
        let mut limbs = vec![0u64; limb_shift];
        if bit_shift == 0 {
            limbs.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                limbs.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry > 0 {
                limbs.push(carry);
            }
        }
        BigInt::from_limbs(self.sign, limbs)
    }

    /// Right shift by one bit (magnitude halving, toward zero).
    pub(crate) fn shr1(&self) -> BigInt {
        if self.is_zero() {
            return BigInt::zero();
        }
        let mut limbs = vec![0u64; self.limbs.len()];
        let mut carry = 0u64;
        for (i, &l) in self.limbs.iter().enumerate().rev() {
            limbs[i] = (l >> 1) | (carry << 63);
            carry = l & 1;
        }
        BigInt::from_limbs(self.sign, limbs)
    }

    /// `true` iff the magnitude is even.
    pub(crate) fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Greatest common divisor of magnitudes (binary GCD; no division).
    pub fn gcd(&self, rhs: &BigInt) -> BigInt {
        let mut a = self.abs();
        let mut b = rhs.abs();
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        let mut shift = 0u32;
        while a.is_even() && b.is_even() {
            a = a.shr1();
            b = b.shr1();
            shift += 1;
        }
        while a.is_even() {
            a = a.shr1();
        }
        loop {
            while b.is_even() {
                b = b.shr1();
            }
            if a.cmp_mag(&b) == std::cmp::Ordering::Greater {
                std::mem::swap(&mut a, &mut b);
            }
            b = BigInt::from_limbs(Sign::Positive, BigInt::sub_mag(&b.limbs, &a.limbs));
            if b.is_zero() {
                return a.shl(shift);
            }
        }
    }

    /// Approximate conversion to `f64` (for diagnostics only).
    pub fn to_f64(&self) -> f64 {
        let mut mag = 0.0f64;
        for &l in self.limbs.iter().rev() {
            mag = mag * 1.8446744073709552e19 + l as f64;
        }
        match self.sign {
            Sign::Negative => -mag,
            Sign::Zero => 0.0,
            Sign::Positive => mag,
        }
    }

    /// Number of significant bits of the magnitude.
    pub fn bits(&self) -> u64 {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() as u64 - 1) * 64 + (64 - top.leading_zeros() as u64),
        }
    }
}

impl From<i64> for BigInt {
    fn from(v: i64) -> Self {
        use std::cmp::Ordering;
        match v.cmp(&0) {
            Ordering::Equal => BigInt::zero(),
            Ordering::Greater => BigInt {
                sign: Sign::Positive,
                limbs: vec![v as u64],
            },
            Ordering::Less => BigInt {
                sign: Sign::Negative,
                limbs: vec![v.unsigned_abs()],
            },
        }
    }
}

impl From<u64> for BigInt {
    fn from(v: u64) -> Self {
        if v == 0 {
            BigInt::zero()
        } else {
            BigInt {
                sign: Sign::Positive,
                limbs: vec![v],
            }
        }
    }
}

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigInt {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        match (self.sign, other.sign) {
            (Sign::Negative, Sign::Negative) => other.cmp_mag(self),
            (Sign::Negative, _) => Ordering::Less,
            (Sign::Zero, Sign::Negative) => Ordering::Greater,
            (Sign::Zero, Sign::Zero) => Ordering::Equal,
            (Sign::Zero, Sign::Positive) => Ordering::Less,
            (Sign::Positive, Sign::Positive) => self.cmp_mag(other),
            (Sign::Positive, _) => Ordering::Greater,
        }
    }
}

impl std::fmt::Display for BigInt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Decimal printing needs division; print in hex instead (exact and
        // cheap), which is sufficient for diagnostics.
        if self.is_zero() {
            return write!(f, "0");
        }
        if self.is_negative() {
            write!(f, "-")?;
        }
        write!(f, "0x")?;
        let mut first = true;
        for &l in self.limbs.iter().rev() {
            if first {
                write!(f, "{l:x}")?;
                first = false;
            } else {
                write!(f, "{l:016x}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(v: i64) -> BigInt {
        BigInt::from(v)
    }

    #[test]
    fn small_arithmetic() {
        assert_eq!(big(3).add(&big(4)), big(7));
        assert_eq!(big(3).sub(&big(4)), big(-1));
        assert_eq!(big(-3).mul(&big(4)), big(-12));
        assert_eq!(big(0).add(&big(0)), BigInt::zero());
        assert_eq!(big(5).sub(&big(5)), BigInt::zero());
    }

    #[test]
    fn carries_across_limbs() {
        let max = BigInt::from(u64::MAX);
        let sum = max.add(&big(1));
        assert_eq!(sum.bits(), 65);
        assert_eq!(sum.sub(&big(1)), max);
        let sq = max.mul(&max);
        // (2^64-1)² = 2^128 - 2^65 + 1
        assert_eq!(sq.bits(), 128);
        assert_eq!(sq.add(&max.shl(1)), BigInt::one().shl(128).sub(&big(1)));
    }

    #[test]
    fn ordering() {
        assert!(big(-5) < big(-2));
        assert!(big(-2) < big(0));
        assert!(big(0) < big(7));
        assert!(BigInt::from(u64::MAX).shl(64) > BigInt::from(u64::MAX));
    }

    #[test]
    fn gcd_matches_euclid() {
        assert_eq!(big(12).gcd(&big(18)), big(6));
        assert_eq!(big(-12).gcd(&big(18)), big(6));
        assert_eq!(big(0).gcd(&big(5)), big(5));
        assert_eq!(big(17).gcd(&big(13)), big(1));
        assert_eq!(big(1 << 20).gcd(&big(1 << 12)), big(1 << 12));
    }

    #[test]
    fn shifts() {
        assert_eq!(
            big(1).shl(64),
            BigInt::from_limbs(Sign::Positive, vec![0, 1])
        );
        assert_eq!(big(6).shr1(), big(3));
        assert_eq!(big(7).shr1(), big(3));
    }

    #[test]
    fn to_f64_round_trip_small() {
        for v in [-12345i64, 0, 1, 999_999_937] {
            assert_eq!(big(v).to_f64(), v as f64);
        }
    }
}
