// Index-based loops over matrix rows/columns mirror the textbook
// formulations of the algorithms and keep row/column symmetry visible.
#![allow(clippy::needless_range_loop)]
// The arithmetic kernels use by-reference inherent methods (`a.add(&b)`)
// rather than operator traits: operands are non-Copy big values and the
// uniform style avoids hidden clones.
#![allow(clippy::should_implement_trait)]

//! Exact rational verification of SOS certificates.
//!
//! The rest of the workspace finds certificates with a floating-point
//! interior-point method — fast, but every answer carries numerical error.
//! This crate closes the gap with the classical rounding-and-projection
//! recipe (Peyrl–Parrilo): given a numeric Gram matrix `Q` for a target
//! polynomial `p`,
//!
//! 1. convert `p` and `Q` **exactly** to rationals (every `f64` is a
//!    dyadic rational),
//! 2. round `Q` to a modest denominator,
//! 3. project the rounded matrix back onto the affine subspace
//!    `{Q : z(x)ᵀ Q z(x) = p}` — the coefficient-matching structure makes
//!    the orthogonal projection exact and cheap, because the constraint
//!    matrices `E_α` have disjoint supports,
//! 4. check `Q ⪰ 0` with an **exact rational LDLᵀ** — no rounding anywhere.
//!
//! Success yields a mathematically rigorous proof that `p` is a sum of
//! squares; combined with the S-procedure pieces it upgrades the pipeline's
//! key inequalities (Lyapunov positivity and decrease) from "numerically
//! plausible" to "machine-checked".
//!
//! Everything here is built from scratch — big integers ([`BigInt`]),
//! rationals ([`Rational`]), rational matrices ([`RationalMatrix`]) — so the
//! trusted base stays inside this workspace.
//!
//! # Examples
//!
//! ```
//! use cppll_poly::Polynomial;
//! use cppll_exact::prove_sos;
//!
//! // p = 2x² − 2xy + y² + 1 is strictly SOS.
//! let p = Polynomial::from_terms(2, &[
//!     (&[2, 0], 2.0), (&[1, 1], -2.0), (&[0, 2], 1.0), (&[0, 0], 1.0),
//! ]);
//! let proof = prove_sos(&p, &Default::default()).expect("exact certificate");
//! assert!(proof.gram_dimension() > 0);
//! ```

mod bigint;
mod matrix;
mod rational;
mod rpoly;
mod verify;

pub use bigint::BigInt;
pub use matrix::RationalMatrix;
pub use rational::Rational;
pub use rpoly::RationalPoly;
pub use verify::{
    prove_nonneg_on, prove_nonneg_on_rational, prove_sos, ExactError, ExactOptions, ExactProof,
    NonnegProof,
};
