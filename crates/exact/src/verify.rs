//! Rounding, projection and exact verification of SOS certificates.

use std::collections::BTreeMap;

use cppll_poly::{Monomial, Polynomial};
use cppll_sos::{PolyExpr, SosOptions, SosProgram};

use crate::rpoly::RationalPoly as RPoly;
use crate::{BigInt, Rational, RationalMatrix};

/// Options for the exact verification pipeline.
#[derive(Debug, Clone)]
pub struct ExactOptions {
    /// Rounding grid: Gram entries are rounded to multiples of
    /// `1/denominator` before projection. Powers of two keep the rationals
    /// small. Larger values round less (tighter to the numeric solution)
    /// but grow the exact arithmetic.
    pub denominator: u64,
    /// Half-degree of the S-procedure multipliers in
    /// [`prove_nonneg_on`]'s numeric pre-solve.
    pub mult_half_degree: u32,
    /// Minimum degree of the multiplier basis monomials. Set to 1 when the
    /// target vanishes at the origin (every Lyapunov decrease claim does):
    /// multipliers must then vanish there too, or the rounding nudge pushes
    /// `Σ σ̃ g` above the target at 0 and exactification fails.
    pub mult_min_degree: u32,
    /// Slack shape of the interior maximisation: `false` restricts the
    /// slack to the target's own degree range (always dominable by σ·g);
    /// `true` spans the full main Gram basis (stronger interior — succeeds
    /// only when the multipliers can dominate the top degrees, which holds
    /// at some degree parities and not others; callers ladder over both).
    pub slack_full_basis: bool,
    /// Options of the numeric pre-solve.
    pub sos: SosOptions,
}

impl Default for ExactOptions {
    fn default() -> Self {
        let mut sos = SosOptions::default();
        // The rounding grid and interior-slack maximisation are calibrated
        // against the full-envelope (legacy) compile: support-pruned
        // multiplier bases shrink the interior margin the projection needs,
        // so the numeric pre-solve keeps the conservative bases.
        sos.reduction.mode = cppll_sos::ReduceMode::Legacy;
        ExactOptions {
            denominator: 1 << 24,
            mult_half_degree: 1,
            mult_min_degree: 0,
            slack_full_basis: false,
            sos,
        }
    }
}

/// Why exact verification failed.
#[derive(Debug)]
pub enum ExactError {
    /// The numeric pre-solve already failed — nothing to exactify.
    NumericSolve(cppll_sos::SosError),
    /// A monomial of the target cannot be produced by any basis pair, so
    /// the projection cannot repair the identity.
    UnrepresentableMonomial(Monomial),
    /// The projected rational Gram matrix is not PSD — the numeric
    /// certificate is too close to the cone boundary for this rounding
    /// grid (retry with a larger denominator or a strictness margin).
    NotPsd {
        /// Which Gram failed ("main" or "multiplier k").
        stage: String,
    },
}

impl std::fmt::Display for ExactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExactError::NumericSolve(e) => write!(f, "numeric pre-solve failed: {e}"),
            ExactError::UnrepresentableMonomial(m) => {
                write!(f, "monomial {m} not representable by the gram basis")
            }
            ExactError::NotPsd { stage } => {
                write!(f, "projected gram not positive semidefinite at {stage}")
            }
        }
    }
}

impl std::error::Error for ExactError {}

/// An exact SOS proof: `p = z(x)ᵀ Q z(x)` with rational `Q ⪰ 0`, both facts
/// checked in exact arithmetic.
#[derive(Debug, Clone)]
pub struct ExactProof {
    basis: Vec<Monomial>,
    gram: RationalMatrix,
}

impl ExactProof {
    /// Dimension of the exact Gram matrix.
    pub fn gram_dimension(&self) -> usize {
        self.gram.dim()
    }

    /// The monomial basis of the Gram representation.
    pub fn basis(&self) -> &[Monomial] {
        &self.basis
    }

    /// The exact Gram matrix.
    pub fn gram(&self) -> &RationalMatrix {
        &self.gram
    }

    /// Re-checks the proof from scratch: exact identity against `p` and
    /// exact PSD-ness. Intended for audits; `true` is a theorem.
    pub fn is_valid_for(&self, p: &Polynomial) -> bool {
        let target = RPoly::from_f64_poly(p);
        self.matches(&target) && self.gram.is_psd()
    }

    fn matches(&self, target: &RPoly) -> bool {
        self.reconstruct().equals(target)
    }

    /// The exact polynomial `z(x)ᵀ Q z(x)` this proof certifies.
    pub fn reconstruct(&self) -> RPoly {
        let nvars = self.basis.first().map_or(0, Monomial::nvars);
        let mut out = RPoly::zero(nvars);
        for (i, mi) in self.basis.iter().enumerate() {
            for (j, mj) in self.basis.iter().enumerate() {
                let q = self.gram.get(i, j);
                if !q.is_zero() {
                    out.add_term(mi.mul(mj), q.clone());
                }
            }
        }
        out
    }
}

/// An exact proof of `p ≥ 0` on `{gⱼ ≥ 0}`:
/// `p = main + Σⱼ σⱼ gⱼ` with exact SOS proofs for `main` and every `σⱼ`.
#[derive(Debug)]
pub struct NonnegProof {
    /// Exact SOS proofs of the multipliers σⱼ (in domain order).
    pub multipliers: Vec<ExactProof>,
    /// Exact SOS proof of the main part `p − Σ σⱼ gⱼ`.
    pub main: ExactProof,
}

/// Gram basis for a target polynomial: the degree envelope used throughout
/// the crate (total degree between ⌈min/2⌉ and ⌊max/2⌋).
fn gram_basis_for(nvars: usize, min_deg: u32, max_deg: u32) -> Vec<Monomial> {
    let hi = max_deg / 2;
    let lo = min_deg.div_ceil(2).min(hi);
    cppll_poly::monomials_up_to(nvars, hi)
        .into_iter()
        .filter(|m| m.degree() >= lo)
        .collect()
}

/// Numeric Gram of `expr = target (− Σ σ g)` with **maximised interior
/// slack**: solves `expr − t·Σ_{m∈basis} m² ∈ Σ, max t`, and returns the
/// Gram of `expr` itself (slack folded back onto the diagonal). A Gram with
/// maximal minimum-eigenvalue is what survives rounding; the min-trace
/// feasibility answer sits on the cone boundary and does not.
fn slack_maximised_gram(
    prog: &mut SosProgram,
    expr: PolyExpr,
    basis: &[Monomial],
    slack_basis: &[Monomial],
    sos: &SosOptions,
) -> Result<(cppll_sos::SosSolution, cppll_linalg::Matrix, f64), ExactError> {
    let nvars = prog.nvars();
    let t = prog.new_scalar();
    // The slack term must stay within the degree range the rest of the
    // identity can dominate: `slack_basis ⊆ basis` spanning only the
    // target's own degrees (a full-basis slack has higher top degree than
    // any σ·g product and forces t ≤ 0 at infinity).
    let mut w = Polynomial::zero(nvars);
    for m in slack_basis {
        w.add_term(m.mul(m), 1.0);
    }
    let slacked = expr.sub(&prog.scalar(t).mul_poly(&w));
    let cid = prog.require_sos_with_basis(slacked, basis.to_vec());
    prog.maximize_scalar(t);
    let mut opts = sos.clone();
    opts.trace_weight = 1e-6;
    let sol = prog.solve(&opts).map_err(ExactError::NumericSolve)?;
    let t_raw = sol.scalar_value(t);
    if t_raw <= 0.0 {
        // No strictly-interior Gram exists: the polynomial sits on (or
        // outside) the SOS-cone boundary — rounding cannot succeed.
        return Err(ExactError::NotPsd {
            stage: format!("main (max interior slack {t_raw:.2e} ≤ 0)"),
        });
    }
    // Fold back a slightly conservative share of the slack so the folded
    // Gram certifies `expr` itself with strict interior.
    let t_star = t_raw;
    let (b, g) = sol.constraint_gram(cid).expect("sos constraint");
    debug_assert_eq!(b.len(), basis.len());
    let mut gram = g.clone();
    for (i, m) in basis.iter().enumerate() {
        if slack_basis.contains(m) {
            gram[(i, i)] += t_star;
        }
    }
    Ok((sol, gram, t_star))
}

/// Proves `p` is a sum of squares with an exact rational certificate.
///
/// Numerically solves the Gram SDP with maximised interior slack, rounds
/// the Gram to the option grid, projects it back onto the
/// coefficient-matching subspace (exact, closed form) and verifies positive
/// semidefiniteness in rational arithmetic.
///
/// # Errors
///
/// See [`ExactError`]. In particular, polynomials on the *boundary* of the
/// SOS cone (those with real zeros) generally cannot be exactified — add a
/// strictness margin first.
pub fn prove_sos(p: &Polynomial, opt: &ExactOptions) -> Result<ExactProof, ExactError> {
    let nvars = p.nvars();
    let (mut min_deg, mut max_deg) = (u32::MAX, 0u32);
    for (m, _) in p.terms() {
        min_deg = min_deg.min(m.degree());
        max_deg = max_deg.max(m.degree());
    }
    if min_deg == u32::MAX {
        min_deg = 0;
    }
    let basis = gram_basis_for(nvars, min_deg, max_deg);
    let mut prog = SosProgram::new(nvars);
    let (_sol, gram, _t) =
        slack_maximised_gram(&mut prog, p.clone().into(), &basis, &basis, &opt.sos)?;
    let target = RPoly::from_f64_poly(p);
    exactify_gram(&basis, &gram, &target, opt.denominator, "main")
}

/// Proves `p ≥ 0` on the semialgebraic set `{gⱼ ≥ 0}` with exact rational
/// certificates for every piece of the S-procedure decomposition.
///
/// Thin wrapper over [`prove_nonneg_on_rational`] (the claim is lifted
/// exactly — every `f64` is a dyadic rational).
///
/// # Errors
///
/// See [`ExactError`].
pub fn prove_nonneg_on(
    p: &Polynomial,
    domain: &[Polynomial],
    opt: &ExactOptions,
) -> Result<NonnegProof, ExactError> {
    let target = RPoly::from_f64_poly(p);
    let domain_rat: Vec<RPoly> = domain.iter().map(RPoly::from_f64_poly).collect();
    prove_nonneg_on_rational(&target, &domain_rat, opt)
}

/// Like [`prove_nonneg_on`], but the claim is stated with **exact
/// rational** data: `target ≥ 0` on `{gⱼ ≥ 0}` where both `target` and the
/// domain are [`RationalPoly`] values (no float rounding between the claim
/// and the theorem). The numeric pre-solve uses nearest-float projections
/// internally; all verification is exact.
///
/// # Errors
///
/// See [`ExactError`].
pub fn prove_nonneg_on_rational(
    target: &crate::RationalPoly,
    domain: &[crate::RationalPoly],
    opt: &ExactOptions,
) -> Result<NonnegProof, ExactError> {
    let nvars = target.nvars();
    let p_f64 = target.to_f64_poly();
    let domain_f64: Vec<Polynomial> = domain.iter().map(RPoly::to_f64_poly).collect();
    let mut prog = SosProgram::new(nvars);
    // S-procedure with explicit multiplier bases respecting mult_min_degree.
    let sigma_basis: Vec<Monomial> = cppll_poly::monomials_up_to(nvars, opt.mult_half_degree)
        .into_iter()
        .filter(|m| m.degree() >= opt.mult_min_degree)
        .collect();
    let mut expr: PolyExpr = p_f64.clone().into();
    let mut mult_ids = Vec::with_capacity(domain_f64.len());
    for g in &domain_f64 {
        let sigma = prog.new_sos_poly_with_basis(sigma_basis.clone());
        // Mild trace regularisation on the multipliers: the interior-slack
        // objective below already rewards a well-conditioned main Gram, so
        // the multipliers only need to be kept from drifting.
        prog.set_sos_poly_trace_weight(sigma, 1e-3 * (1.0 + g.max_abs_coefficient()));
        mult_ids.push(sigma);
        expr = expr.sub(&prog.sos_poly(sigma).mul_poly(g));
    }
    // Main Gram basis covering the target and every σ·g product.
    let (mut min_deg, mut max_deg) = (u32::MAX, 0u32);
    for (m, _) in p_f64.terms() {
        min_deg = min_deg.min(m.degree());
        max_deg = max_deg.max(m.degree());
    }
    if min_deg == u32::MAX {
        min_deg = 0;
    }
    let sigma_deg = 2 * opt.mult_half_degree;
    let sigma_min = 2 * opt.mult_min_degree;
    for g in &domain_f64 {
        let gdeg = g.degree();
        max_deg = max_deg.max(sigma_deg + gdeg);
        let g_min = g.terms().map(|(m, _)| m.degree()).min().unwrap_or(0);
        min_deg = min_deg.min(sigma_min + g_min);
    }
    // Slack shape: when the multipliers may carry constant terms
    // (mult_min_degree == 0, i.e. the domain excludes the origin and the
    // claim is strictly positive there), a pure CONSTANT slack suffices and
    // never outgrows the σ·g terms. Otherwise (claims vanishing at the
    // origin) the slack spans the target's own degree range.
    let constant_slack = opt.mult_min_degree == 0;
    let main_basis = if constant_slack {
        gram_basis_for(nvars, 0, max_deg)
    } else {
        gram_basis_for(nvars, min_deg, max_deg)
    };
    let (mut t_min, mut t_max) = (u32::MAX, 0u32);
    for (m, _) in p_f64.terms() {
        t_min = t_min.min(m.degree());
        t_max = t_max.max(m.degree());
    }
    if t_min == u32::MAX {
        t_min = 0;
    }
    let (slack_lo, slack_hi) = if opt.slack_full_basis {
        (0u32, u32::MAX)
    } else if constant_slack {
        (0u32, 0u32)
    } else {
        let lo = t_min.div_ceil(2);
        (lo, (t_max / 2).max(lo))
    };
    let slack_basis: Vec<Monomial> = main_basis
        .iter()
        .filter(|m| (slack_lo..=slack_hi).contains(&m.degree()))
        .cloned()
        .collect();
    // Solve with maximised interior slack on the main Gram.
    let (sol, main_gram, _t) =
        slack_maximised_gram(&mut prog, expr, &main_basis, &slack_basis, &opt.sos)?;
    let main_basis = main_basis.as_slice();
    let main_gram = &main_gram;
    let mut representable: std::collections::BTreeSet<Monomial> = std::collections::BTreeSet::new();
    for mi in main_basis {
        for mj in main_basis {
            representable.insert(mi.mul(mj));
        }
    }
    let mut multipliers = Vec::with_capacity(mult_ids.len());
    let mut exact_target = target.clone();
    for (k, (gid, g_rat)) in mult_ids.iter().zip(domain).enumerate() {
        let (basis, gram) = sol.sos_poly_gram(*gid);
        let keep: Vec<usize> = (0..basis.len())
            .filter(|&i| {
                basis.iter().all(|mj| {
                    g_rat
                        .terms()
                        .all(|(mg, _)| representable.contains(&basis[i].mul(mj).mul(mg)))
                })
            })
            .collect();
        let sub_basis: Vec<Monomial> = keep.iter().map(|&i| basis[i].clone()).collect();
        let mut q = RationalMatrix::zeros(keep.len());
        for (r, &ir) in keep.iter().enumerate() {
            for (c, &ic) in keep.iter().enumerate() {
                q.set(r, c, Rational::from_f64(gram[(ir, ic)]));
            }
        }
        round_matrix(&mut q, opt.denominator);
        q.symmetrize();
        let nudge = Rational::new(
            BigInt::from(q.dim().max(1) as i64),
            BigInt::from(opt.denominator as i64),
        );
        for i in 0..q.dim() {
            q.add_to(i, i, &nudge);
        }
        if !q.is_psd() {
            return Err(ExactError::NotPsd {
                stage: format!("multiplier {k}"),
            });
        }
        let proof = ExactProof {
            basis: sub_basis,
            gram: q,
        };
        exact_target = exact_target.sub(&proof.reconstruct().mul(g_rat));
        multipliers.push(proof);
    }
    let main = exactify_gram(
        main_basis,
        main_gram,
        &exact_target,
        opt.denominator,
        "main",
    )?;
    Ok(NonnegProof { multipliers, main })
}

/// Rounds, projects onto `{Q : z(x)ᵀQz(x) = target}` and PSD-checks.
fn exactify_gram(
    basis: &[Monomial],
    gram: &cppll_linalg::Matrix,
    target: &RPoly,
    denominator: u64,
    stage: &str,
) -> Result<ExactProof, ExactError> {
    let n = basis.len();
    let mut q = RationalMatrix::from_f64(gram);
    round_matrix(&mut q, denominator);
    q.symmetrize();

    // Group Gram positions by the monomial they produce.
    let mut groups: BTreeMap<Monomial, Vec<(usize, usize)>> = BTreeMap::new();
    for (i, mi) in basis.iter().enumerate() {
        for (j, mj) in basis.iter().enumerate() {
            groups.entry(mi.mul(mj)).or_default().push((i, j));
        }
    }
    // Every target monomial must be representable.
    for (m, c) in target.terms() {
        if !c.is_zero() && !groups.contains_key(m) {
            return Err(ExactError::UnrepresentableMonomial(m.clone()));
        }
    }
    // Orthogonal projection: per monomial α, spread the defect uniformly
    // over the (ordered) positions producing α.
    for (alpha, positions) in &groups {
        let mut achieved = Rational::zero();
        for &(i, j) in positions {
            achieved = achieved.add(q.get(i, j));
        }
        let wanted = target.coefficient(alpha);
        let defect = wanted.sub(&achieved);
        if defect.is_zero() {
            continue;
        }
        let share = defect.div(&Rational::from_int(positions.len() as i64));
        for &(i, j) in positions {
            q.add_to(i, j, &share);
        }
    }
    debug_assert!(n == q.dim());
    if !q.is_psd() {
        return Err(ExactError::NotPsd {
            stage: stage.to_string(),
        });
    }
    Ok(ExactProof {
        basis: basis.to_vec(),
        gram: q,
    })
}

fn round_matrix(q: &mut RationalMatrix, denominator: u64) {
    let n = q.dim();
    for r in 0..n {
        for c in 0..n {
            let v = q.get(r, c).round_to(denominator);
            q.set(r, c, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strict_quadratic_exactifies() {
        // 2x² − 2xy + y² + 1 = (x − y)² + x² + 1: strictly SOS.
        let p = Polynomial::from_terms(
            2,
            &[
                (&[2, 0], 2.0),
                (&[1, 1], -2.0),
                (&[0, 2], 1.0),
                (&[0, 0], 1.0),
            ],
        );
        let proof = prove_sos(&p, &ExactOptions::default()).expect("exact proof");
        assert!(proof.is_valid_for(&p), "audit must re-verify");
    }

    #[test]
    fn indefinite_polynomial_is_rejected() {
        // x² − y² is indefinite: the max-interior-slack pre-solve finds a
        // negative optimum and the exactifier must fail (with either a
        // numeric-solve error or the ≤-0-slack guard — never a "proof").
        let p = Polynomial::from_terms(2, &[(&[2, 0], 1.0), (&[0, 2], -1.0)]);
        assert!(prove_sos(&p, &ExactOptions::default()).is_err());
    }

    #[test]
    fn nonneg_on_compact_interval_exactifies() {
        // p(x) = x + 2 ≥ 1 on the compact interval encoded by
        // (1+x)(1−x) ≥ 0: strictly positive with interior slack.
        let x = Polynomial::var(1, 0);
        let p = &x + &Polynomial::constant(1, 2.0);
        let box1 = Polynomial::from_terms(1, &[(&[0], 1.0), (&[2], -1.0)]); // 1 − x²
        let proof = prove_nonneg_on(&p, &[box1], &ExactOptions::default()).expect("exact proof");
        assert_eq!(proof.multipliers.len(), 1);
        assert!(proof.main.gram_dimension() >= 1);
        // Exact audit: reconstruct main + σ·g and compare to p.
        let g = Polynomial::from_terms(1, &[(&[0], 1.0), (&[2], -1.0)]);
        let total = proof.main.reconstruct().add(
            &proof.multipliers[0]
                .reconstruct()
                .mul(&RPoly::from_f64_poly(&g)),
        );
        assert!(
            total.equals(&RPoly::from_f64_poly(&p)),
            "identity must be exact"
        );
    }

    #[test]
    fn tight_at_infinity_is_rejected_not_faked() {
        // x + 2 on the unbounded {x ≥ −1}: the decomposition is tight at
        // infinity; the exactifier must fail honestly, never "prove" it.
        let x = Polynomial::var(1, 0);
        let p = &x + &Polynomial::constant(1, 2.0);
        let domain = vec![&x + &Polynomial::constant(1, 1.0)];
        assert!(prove_nonneg_on(&p, &domain, &ExactOptions::default()).is_err());
    }

    #[test]
    fn rounding_grid_too_coarse_can_fail_gracefully() {
        // A thin SOS: x² + 10⁻⁶ — roundable at fine grids; at an absurdly
        // coarse grid the projected matrix may lose PSD-ness, which must be
        // reported as NotPsd (never a wrong "proof").
        let p = Polynomial::from_terms(1, &[(&[2], 1.0), (&[0], 1e-6)]);
        let fine = prove_sos(&p, &ExactOptions::default());
        assert!(fine.is_ok(), "fine grid must succeed");
        let coarse = prove_sos(
            &p,
            &ExactOptions {
                denominator: 4,
                ..Default::default()
            },
        );
        if let Ok(proof) = coarse {
            // If it *does* succeed, it must still be a genuine theorem.
            assert!(proof.is_valid_for(&p));
        }
    }

    #[test]
    fn proof_rejects_wrong_polynomial() {
        let p = Polynomial::from_terms(
            2,
            &[
                (&[2, 0], 2.0),
                (&[1, 1], -2.0),
                (&[0, 2], 1.0),
                (&[0, 0], 1.0),
            ],
        );
        let proof = prove_sos(&p, &ExactOptions::default()).expect("exact proof");
        let other = Polynomial::from_terms(2, &[(&[2, 0], 1.0), (&[0, 0], 1.0)]);
        assert!(!proof.is_valid_for(&other));
    }
}
