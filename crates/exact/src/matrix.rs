//! Dense rational matrices with an exact PSD test.

use crate::Rational;

/// A dense matrix of exact rationals.
#[derive(Debug, Clone, PartialEq)]
pub struct RationalMatrix {
    n: usize,
    /// Row-major entries.
    data: Vec<Rational>,
}

impl RationalMatrix {
    /// The `n × n` zero matrix.
    pub fn zeros(n: usize) -> Self {
        RationalMatrix {
            n,
            data: vec![Rational::zero(); n * n],
        }
    }

    /// Builds from a float matrix by **exact** dyadic conversion.
    ///
    /// # Panics
    ///
    /// Panics if `m` is not square or contains non-finite entries.
    pub fn from_f64(m: &cppll_linalg::Matrix) -> Self {
        assert!(m.is_square(), "rational conversion requires square input");
        let n = m.nrows();
        let mut out = RationalMatrix::zeros(n);
        for r in 0..n {
            for c in 0..n {
                out.set(r, c, Rational::from_f64(m[(r, c)]));
            }
        }
        out
    }

    /// Dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Entry accessor.
    pub fn get(&self, r: usize, c: usize) -> &Rational {
        &self.data[r * self.n + c]
    }

    /// Entry setter.
    pub fn set(&mut self, r: usize, c: usize, v: Rational) {
        self.data[r * self.n + c] = v;
    }

    /// Adds `v` to entry `(r, c)`.
    pub fn add_to(&mut self, r: usize, c: usize, v: &Rational) {
        let cur = self.get(r, c).clone();
        self.set(r, c, cur.add(v));
    }

    /// Symmetrises exactly: `(A + Aᵀ)` entries averaged.
    pub fn symmetrize(&mut self) {
        let half = Rational::new(crate::BigInt::one(), crate::BigInt::from(2i64));
        for r in 0..self.n {
            for c in (r + 1)..self.n {
                let avg = self.get(r, c).add(self.get(c, r)).mul(&half);
                self.set(r, c, avg.clone());
                self.set(c, r, avg);
            }
        }
    }

    /// Exact positive-**semi**definiteness test by rational LDLᵀ with
    /// semidefinite pivot handling: a zero pivot is admissible only when its
    /// entire remaining row/column is zero.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not symmetric (call
    /// [`RationalMatrix::symmetrize`] first if needed).
    pub fn is_psd(&self) -> bool {
        let n = self.n;
        for r in 0..n {
            for c in (r + 1)..n {
                assert!(
                    self.get(r, c) == self.get(c, r),
                    "psd test requires a symmetric matrix"
                );
            }
        }
        // Work on a copy; standard outer-product elimination.
        let mut a = self.clone();
        for k in 0..n {
            let pivot = a.get(k, k).clone();
            if pivot.is_negative() {
                return false;
            }
            if pivot.is_zero() {
                // Semidefinite case: the whole remaining row must vanish.
                for j in (k + 1)..n {
                    if !a.get(k, j).is_zero() {
                        return false;
                    }
                }
                continue;
            }
            for i in (k + 1)..n {
                let lik = a.get(i, k).div(&pivot);
                if lik.is_zero() {
                    continue;
                }
                for j in i..n {
                    // Only the lower-right block, symmetric update.
                    let delta = lik.mul(a.get(k, j));
                    let cur = a.get(i, j).sub(&delta);
                    a.set(i, j, cur.clone());
                    a.set(j, i, cur);
                }
            }
        }
        true
    }

    /// Quadratic form `vᵀ A v` (exact).
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.dim()`.
    pub fn quadratic_form(&self, v: &[Rational]) -> Rational {
        assert_eq!(v.len(), self.n, "dimension mismatch");
        let mut acc = Rational::zero();
        for r in 0..self.n {
            if v[r].is_zero() {
                continue;
            }
            for c in 0..self.n {
                if v[c].is_zero() {
                    continue;
                }
                acc = acc.add(&v[r].mul(self.get(r, c)).mul(&v[c]));
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BigInt;

    fn r(n: i64, d: i64) -> Rational {
        Rational::new(BigInt::from(n), BigInt::from(d))
    }

    fn mat(entries: &[&[i64]]) -> RationalMatrix {
        let n = entries.len();
        let mut m = RationalMatrix::zeros(n);
        for (i, row) in entries.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                m.set(i, j, r(v, 1));
            }
        }
        m
    }

    #[test]
    fn identity_is_psd() {
        assert!(mat(&[&[1, 0], &[0, 1]]).is_psd());
    }

    #[test]
    fn definite_and_indefinite() {
        assert!(mat(&[&[2, 1], &[1, 2]]).is_psd());
        assert!(!mat(&[&[1, 2], &[2, 1]]).is_psd());
        assert!(!mat(&[&[-1, 0], &[0, 1]]).is_psd());
    }

    #[test]
    fn semidefinite_boundary_is_exact() {
        // Rank-1 PSD: [[1,1],[1,1]] — floating point can waver; exact must not.
        assert!(mat(&[&[1, 1], &[1, 1]]).is_psd());
        // An epsilon off: [[1,1],[1, 1 - 1/10^9]] is indefinite.
        let mut m = mat(&[&[1, 1], &[1, 1]]);
        m.set(1, 1, r(999_999_999, 1_000_000_000));
        assert!(!m.is_psd());
        // Zero pivot with nonzero row ⇒ not PSD.
        assert!(!mat(&[&[0, 1], &[1, 0]]).is_psd());
        // All-zero matrix is PSD.
        assert!(mat(&[&[0, 0], &[0, 0]]).is_psd());
    }

    #[test]
    fn quadratic_form_matches() {
        let m = mat(&[&[2, 1], &[1, 3]]);
        let v = vec![r(1, 1), r(-1, 1)];
        // 2 - 1 - 1 + 3 = 3.
        assert_eq!(m.quadratic_form(&v), r(3, 1));
    }

    #[test]
    fn from_f64_exact() {
        let f = cppll_linalg::Matrix::from_rows(&[&[0.5, 0.25], &[0.25, 0.125]]);
        let m = RationalMatrix::from_f64(&f);
        assert_eq!(*m.get(0, 0), r(1, 2));
        assert_eq!(*m.get(1, 1), r(1, 8));
        // det = 1/16 − 1/16 = 0: an exactly singular PSD matrix.
        assert!(m.is_psd());
    }
}
