//! Multivariate polynomials with exact rational coefficients.

use std::collections::BTreeMap;

use cppll_poly::{Monomial, Polynomial};

use crate::Rational;

/// A sparse multivariate polynomial over [`Rational`] coefficients.
///
/// The exact twin of [`cppll_poly::Polynomial`]: used to state verification
/// claims (Lie derivatives, S-procedure targets) without any floating-point
/// rounding between the certificate and the theorem.
#[derive(Debug, Clone, PartialEq)]
pub struct RationalPoly {
    nvars: usize,
    terms: BTreeMap<Monomial, Rational>,
}

impl RationalPoly {
    /// The zero polynomial over `nvars` variables.
    pub fn zero(nvars: usize) -> Self {
        RationalPoly {
            nvars,
            terms: BTreeMap::new(),
        }
    }

    /// Exact lift of a float polynomial (every `f64` is dyadic).
    pub fn from_f64_poly(p: &Polynomial) -> Self {
        let mut out = RationalPoly::zero(p.nvars());
        for (m, c) in p.terms() {
            out.add_term(m.clone(), Rational::from_f64(c));
        }
        out
    }

    /// Nearest-float projection (for diagnostics and numeric pre-solves).
    pub fn to_f64_poly(&self) -> Polynomial {
        let mut out = Polynomial::zero(self.nvars);
        for (m, c) in &self.terms {
            out.add_term(m.clone(), c.to_f64());
        }
        out
    }

    /// Number of variables.
    pub fn nvars(&self) -> usize {
        self.nvars
    }

    /// `true` when no terms remain.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// Adds `c · m`, removing the term on exact cancellation.
    ///
    /// # Panics
    ///
    /// Panics on a variable-count mismatch.
    pub fn add_term(&mut self, m: Monomial, c: Rational) {
        assert_eq!(m.nvars(), self.nvars, "variable counts must match");
        if c.is_zero() {
            return;
        }
        let entry = self.terms.entry(m.clone()).or_insert_with(Rational::zero);
        *entry = entry.add(&c);
        if entry.is_zero() {
            self.terms.remove(&m);
        }
    }

    /// Coefficient of `m` (zero if absent).
    pub fn coefficient(&self, m: &Monomial) -> Rational {
        self.terms.get(m).cloned().unwrap_or_else(Rational::zero)
    }

    /// Term iterator in graded-lex order.
    pub fn terms(&self) -> impl Iterator<Item = (&Monomial, &Rational)> {
        self.terms.iter()
    }

    /// Sum.
    pub fn add(&self, rhs: &RationalPoly) -> RationalPoly {
        let mut out = self.clone();
        for (m, c) in rhs.terms() {
            out.add_term(m.clone(), c.clone());
        }
        out
    }

    /// Difference.
    pub fn sub(&self, rhs: &RationalPoly) -> RationalPoly {
        let mut out = self.clone();
        for (m, c) in rhs.terms() {
            out.add_term(m.clone(), c.neg());
        }
        out
    }

    /// Product.
    pub fn mul(&self, rhs: &RationalPoly) -> RationalPoly {
        let mut out = RationalPoly::zero(self.nvars);
        for (ma, ca) in self.terms() {
            for (mb, cb) in rhs.terms() {
                out.add_term(ma.mul(mb), ca.mul(cb));
            }
        }
        out
    }

    /// Scalar multiple.
    pub fn scale(&self, s: &Rational) -> RationalPoly {
        let mut out = RationalPoly::zero(self.nvars);
        for (m, c) in self.terms() {
            out.add_term(m.clone(), c.mul(s));
        }
        out
    }

    /// Negation.
    pub fn neg(&self) -> RationalPoly {
        self.scale(&Rational::from_int(-1))
    }

    /// Exact partial derivative `∂/∂xᵢ`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= nvars`.
    pub fn partial_derivative(&self, i: usize) -> RationalPoly {
        assert!(i < self.nvars, "variable index out of range");
        let mut out = RationalPoly::zero(self.nvars);
        for (m, c) in self.terms() {
            let e = m.exp(i);
            if e == 0 {
                continue;
            }
            let mut exps = m.exps().to_vec();
            exps[i] = e - 1;
            out.add_term(Monomial::new(exps), c.mul(&Rational::from_int(e as i64)));
        }
        out
    }

    /// Exact Lie derivative `∇p · f`.
    ///
    /// # Panics
    ///
    /// Panics if `f.len() != nvars`.
    pub fn lie_derivative(&self, f: &[RationalPoly]) -> RationalPoly {
        assert_eq!(f.len(), self.nvars, "vector field dimension mismatch");
        let mut out = RationalPoly::zero(self.nvars);
        for (i, fi) in f.iter().enumerate() {
            out = out.add(&self.partial_derivative(i).mul(fi));
        }
        out
    }

    /// Exact equality.
    pub fn equals(&self, rhs: &RationalPoly) -> bool {
        self.sub(rhs).is_zero()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BigInt;

    fn r(n: i64, d: i64) -> Rational {
        Rational::new(BigInt::from(n), BigInt::from(d))
    }

    #[test]
    fn exact_ring_ops() {
        // p = x/3 + y, q = x − y: pq = x²/3 + (2/3)xy − y².
        let mut p = RationalPoly::zero(2);
        p.add_term(Monomial::var(2, 0), r(1, 3));
        p.add_term(Monomial::var(2, 1), r(1, 1));
        let mut q = RationalPoly::zero(2);
        q.add_term(Monomial::var(2, 0), r(1, 1));
        q.add_term(Monomial::var(2, 1), r(-1, 1));
        let pq = p.mul(&q);
        assert_eq!(pq.coefficient(&Monomial::new(vec![2, 0])), r(1, 3));
        assert_eq!(pq.coefficient(&Monomial::new(vec![1, 1])), r(2, 3));
        assert_eq!(pq.coefficient(&Monomial::new(vec![0, 2])), r(-1, 1));
        assert!(p.sub(&p).is_zero());
    }

    #[test]
    fn exact_calculus() {
        // V = x² + xy: ∂x = 2x + y; Lie along f = (y, −x):
        // (2x + y)y + x(−x) = 2xy + y² − x².
        let mut v = RationalPoly::zero(2);
        v.add_term(Monomial::new(vec![2, 0]), r(1, 1));
        v.add_term(Monomial::new(vec![1, 1]), r(1, 1));
        let mut fy = RationalPoly::zero(2);
        fy.add_term(Monomial::var(2, 1), r(1, 1));
        let mut fx = RationalPoly::zero(2);
        fx.add_term(Monomial::var(2, 0), r(-1, 1));
        let vdot = v.lie_derivative(&[fy, fx]);
        assert_eq!(vdot.coefficient(&Monomial::new(vec![1, 1])), r(2, 1));
        assert_eq!(vdot.coefficient(&Monomial::new(vec![0, 2])), r(1, 1));
        assert_eq!(vdot.coefficient(&Monomial::new(vec![2, 0])), r(-1, 1));
    }

    #[test]
    fn float_round_trip() {
        let p = Polynomial::from_terms(2, &[(&[2, 0], 0.5), (&[0, 1], -0.25)]);
        let rp = RationalPoly::from_f64_poly(&p);
        let back = rp.to_f64_poly();
        assert!((&back - &p).max_abs_coefficient() == 0.0);
    }
}
