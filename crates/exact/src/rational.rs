//! Exact rational numbers over [`BigInt`].

use crate::BigInt;

/// An exact rational `num/den` with `den > 0`, always normalized (gcd 1).
///
/// Every `f64` converts **exactly** (dyadic rationals), so floating-point
/// certificates can be lifted into exact arithmetic without any further
/// rounding step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rational {
    num: BigInt,
    den: BigInt,
}

impl Rational {
    /// Zero.
    pub fn zero() -> Self {
        Rational {
            num: BigInt::zero(),
            den: BigInt::one(),
        }
    }

    /// One.
    pub fn one() -> Self {
        Rational {
            num: BigInt::one(),
            den: BigInt::one(),
        }
    }

    /// Builds `num/den`, normalizing sign and gcd.
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero.
    pub fn new(num: BigInt, den: BigInt) -> Self {
        assert!(!den.is_zero(), "rational with zero denominator");
        if num.is_zero() {
            return Rational::zero();
        }
        let (num, den) = if den.is_negative() {
            (num.neg(), den.neg())
        } else {
            (num, den)
        };
        let g = num.gcd(&den);
        if g == BigInt::one() {
            Rational { num, den }
        } else {
            Rational {
                num: divide_exact(&num, &g),
                den: divide_exact(&den, &g),
            }
        }
    }

    /// Exact conversion from `f64`.
    ///
    /// # Panics
    ///
    /// Panics on NaN or infinity.
    pub fn from_f64(v: f64) -> Self {
        assert!(v.is_finite(), "cannot convert non-finite float");
        if v == 0.0 {
            return Rational::zero();
        }
        let bits = v.to_bits();
        let sign = if bits >> 63 == 1 { -1i64 } else { 1 };
        let exponent = ((bits >> 52) & 0x7ff) as i64;
        let fraction = bits & ((1u64 << 52) - 1);
        let (mantissa, exp2) = if exponent == 0 {
            (fraction, -1074i64) // subnormal
        } else {
            (fraction | (1u64 << 52), exponent - 1075)
        };
        let m = BigInt::from(mantissa);
        let m = if sign < 0 { m.neg() } else { m };
        if exp2 >= 0 {
            Rational::new(m.shl(exp2 as u32), BigInt::one())
        } else {
            Rational::new(m, BigInt::one().shl((-exp2) as u32))
        }
    }

    /// Integer constructor.
    pub fn from_int(v: i64) -> Self {
        Rational {
            num: BigInt::from(v),
            den: BigInt::one(),
        }
    }

    /// Numerator (sign-carrying).
    pub fn numerator(&self) -> &BigInt {
        &self.num
    }

    /// Denominator (positive).
    pub fn denominator(&self) -> &BigInt {
        &self.den
    }

    /// `true` iff zero.
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// `true` iff strictly negative.
    pub fn is_negative(&self) -> bool {
        self.num.is_negative()
    }

    /// `true` iff strictly positive.
    pub fn is_positive(&self) -> bool {
        self.num.is_positive()
    }

    /// Sum.
    pub fn add(&self, rhs: &Rational) -> Rational {
        Rational::new(
            self.num.mul(&rhs.den).add(&rhs.num.mul(&self.den)),
            self.den.mul(&rhs.den),
        )
    }

    /// Difference.
    pub fn sub(&self, rhs: &Rational) -> Rational {
        self.add(&rhs.neg())
    }

    /// Product.
    pub fn mul(&self, rhs: &Rational) -> Rational {
        Rational::new(self.num.mul(&rhs.num), self.den.mul(&rhs.den))
    }

    /// Quotient.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    pub fn div(&self, rhs: &Rational) -> Rational {
        assert!(!rhs.is_zero(), "division by zero rational");
        Rational::new(self.num.mul(&rhs.den), self.den.mul(&rhs.num))
    }

    /// Negation.
    pub fn neg(&self) -> Rational {
        Rational {
            num: self.num.neg(),
            den: self.den.clone(),
        }
    }

    /// Absolute value.
    pub fn abs(&self) -> Rational {
        Rational {
            num: self.num.abs(),
            den: self.den.clone(),
        }
    }

    /// Approximate `f64` value (diagnostics only).
    pub fn to_f64(&self) -> f64 {
        // Scale so both parts stay in f64 range for reasonable sizes.
        let nb = self.num.bits() as i64;
        let db = self.den.bits() as i64;
        if nb < 900 && db < 900 {
            self.num.to_f64() / self.den.to_f64()
        } else {
            // Shift both down; only the ratio matters.
            let shift = (nb.max(db) - 512).max(0) as u32;
            let sn = shift_down(&self.num, shift);
            let sd = shift_down(&self.den, shift);
            sn / sd
        }
    }

    /// Rounds to the nearest multiple of `1/denominator` (ties toward zero).
    ///
    /// # Panics
    ///
    /// Panics if `denominator` is zero.
    pub fn round_to(&self, denominator: u64) -> Rational {
        assert!(denominator > 0, "zero rounding denominator");
        // round(v·D)/D computed via exact arithmetic on f64 of the scaled
        // value is unsafe for large values; instead use the identity
        // round(n·D/d) = floor((2nD + d)/(2d)) for positive n — but we have
        // no integer division. A simpler exact scheme: binary search the
        // integer k with |k/D − v| minimal over k in a window around the
        // f64 estimate, which is exact because comparisons are exact.
        let estimate = (self.to_f64() * denominator as f64).round();
        let mut best: Option<(Rational, Rational)> = None; // (k/D, |err|)
        let base = estimate as i64;
        for dk in -2i64..=2 {
            let k = base.saturating_add(dk);
            let cand = Rational::new(BigInt::from(k), BigInt::from(denominator as i64));
            let err = cand.sub(self).abs();
            let better = match &best {
                None => true,
                Some((_, e)) => err < *e,
            };
            if better {
                best = Some((cand, err));
            }
        }
        best.expect("window is nonempty").0
    }
}

/// Exact division `a / g` for `g` dividing `a`, by binary long division
/// (shift-and-subtract — consistent with the crate's no-long-division rule,
/// since halving is a one-bit shift). Used only for gcd normalization.
fn divide_exact(a: &BigInt, g: &BigInt) -> BigInt {
    let negative = a.is_negative() != g.is_negative();
    let mut rem = a.abs();
    let g = g.abs();
    if g == BigInt::one() {
        return if negative { rem.neg() } else { rem };
    }
    let mut quotient = BigInt::zero();
    let shift = rem.bits().saturating_sub(g.bits()) as u32;
    let mut divisor = g.shl(shift);
    let mut bit = BigInt::one().shl(shift);
    loop {
        if divisor <= rem {
            rem = rem.sub(&divisor);
            quotient = quotient.add(&bit);
        }
        if bit == BigInt::one() {
            break;
        }
        divisor = divisor.shr1();
        bit = bit.shr1();
    }
    debug_assert!(rem.is_zero(), "divide_exact requires exact divisibility");
    if negative {
        quotient.neg()
    } else {
        quotient
    }
}

fn shift_down(v: &BigInt, mut k: u32) -> f64 {
    let mut x = v.clone();
    while k > 0 {
        x = x.shr1();
        k -= 1;
    }
    x.to_f64()
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // a/b ? c/d ⟺ ad ? cb for positive b, d.
        self.num.mul(&other.den).cmp(&other.num.mul(&self.den))
    }
}

impl std::fmt::Display for Rational {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.den == BigInt::one() {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64, d: i64) -> Rational {
        Rational::new(BigInt::from(n), BigInt::from(d))
    }

    #[test]
    fn normalization() {
        assert_eq!(r(2, 4), r(1, 2));
        assert_eq!(r(-2, -4), r(1, 2));
        assert_eq!(r(2, -4), r(-1, 2));
        assert!(r(-1, 2).is_negative());
    }

    #[test]
    fn field_arithmetic() {
        assert_eq!(r(1, 2).add(&r(1, 3)), r(5, 6));
        assert_eq!(r(1, 2).sub(&r(1, 3)), r(1, 6));
        assert_eq!(r(2, 3).mul(&r(3, 4)), r(1, 2));
        assert_eq!(r(2, 3).div(&r(4, 3)), r(1, 2));
    }

    #[test]
    fn exact_f64_conversion() {
        assert_eq!(Rational::from_f64(0.5), r(1, 2));
        assert_eq!(Rational::from_f64(-0.75), r(-3, 4));
        assert_eq!(Rational::from_f64(3.0), r(3, 1));
        // 0.1 is NOT 1/10 in binary; conversion must be exact, so
        // multiplying back by 10 must NOT give exactly 1.
        let tenth = Rational::from_f64(0.1);
        assert_ne!(tenth.mul(&r(10, 1)), Rational::one());
        // but must agree with f64 semantics
        assert!((tenth.to_f64() - 0.1).abs() < 1e-18);
    }

    #[test]
    fn ordering_is_exact() {
        assert!(r(1, 3) < r(1, 2));
        assert!(r(-1, 2) < r(-1, 3));
        assert!(r(7, 7) == Rational::one());
    }

    #[test]
    fn rounding_to_denominator() {
        let v = Rational::from_f64(0.333_333_333);
        assert_eq!(v.round_to(3), r(1, 3));
        let w = Rational::from_f64(1.499);
        assert_eq!(w.round_to(2), r(3, 2));
        let z = Rational::from_f64(-0.26);
        assert_eq!(z.round_to(4), r(-1, 4));
    }

    #[test]
    fn to_f64_accuracy() {
        let v = r(22, 7);
        assert!((v.to_f64() - 22.0 / 7.0).abs() < 1e-15);
    }
}
