//! # cppll — inevitability of phase-locking in charge-pump PLLs via SOS
//!
//! A from-scratch Rust reproduction of *"Verifying inevitability of
//! phase-locking in a charge pump phase lock loop using sum of squares
//! programming"* (Ul Asad & Jones, 2015), including every substrate the
//! paper's MATLAB/YALMIP toolchain provided:
//!
//! * [`linalg`] — dense factorisations (LU, Cholesky, LDLᵀ, Jacobi eigen),
//! * [`poly`] — sparse multivariate polynomials with calculus and
//!   composition,
//! * [`sdp`] — a primal–dual interior-point semidefinite solver,
//! * [`sos`] — sum-of-squares programming (Gram compilation, S-procedure,
//!   set inclusion, bisection),
//! * [`hybrid`] — hybrid dynamical systems with event-detecting simulation,
//! * [`pll`] — the third/fourth-order CP PLL behavioural models (Table 1),
//! * [`exact`] — big-integer/rational kernel upgrading numeric certificates
//!   to machine-checked exact proofs,
//! * [`verify`] — the paper's methodology: multiple Lyapunov certificates,
//!   level-set maximisation, bounded advection of level sets and escape
//!   certificates, orchestrated by
//!   [`verify::InevitabilityVerifier`].
//!
//! # Quickstart
//!
//! Verify that the third-order CP PLL inevitably phase-locks:
//!
//! ```no_run
//! use cppll::pll::{PllModelBuilder, PllOrder};
//! use cppll::verify::{InevitabilityVerifier, PipelineOptions};
//!
//! let model = PllModelBuilder::new(PllOrder::Third).build();
//! let verifier = InevitabilityVerifier::for_pll(&model);
//! let report = verifier.verify(&PipelineOptions::degree(4))?;
//! assert!(report.verdict.is_verified());
//! println!("attractive invariant level c* = {}", report.levels.level);
//! # Ok::<(), cppll::verify::VerifyError>(())
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench` for the
//! harness regenerating every table and figure of the paper.

pub use cppll_exact as exact;
pub use cppll_harness as harness;
pub use cppll_par as par;
pub use cppll_hybrid as hybrid;
pub use cppll_linalg as linalg;
pub use cppll_pll as pll;
pub use cppll_poly as poly;
pub use cppll_sdp as sdp;
pub use cppll_serve as serve;
pub use cppll_sos as sos;
pub use cppll_verify as verify;
