//! Bounded advection of polynomial level sets as a standalone reachability
//! tool (Section 2.5 of the paper, after Wang–Lall–West): advect an initial
//! disc under a spiral sink and watch the certified front contract, then
//! demonstrate the Eq.-6-style SOS merge that squeezes a piecewise front
//! back into a single polynomial with bisected tightness γ.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example advection_reachability
//! ```

use cppll::hybrid::{HybridSystem, Mode};
use cppll::poly::Polynomial;
use cppll::verify::{Advection, AdvectionOptions};

fn main() {
    // Spiral sink: ẋ = −x + 2y, ẏ = −2x − y.
    let f = vec![
        Polynomial::from_terms(2, &[(&[1, 0], -1.0), (&[0, 1], 2.0)]),
        Polynomial::from_terms(2, &[(&[1, 0], -2.0), (&[0, 1], -1.0)]),
    ];
    let sys = HybridSystem::new(2, vec![Mode::new("spiral", f)], vec![]);
    let adv = Advection::new(&sys);
    let opt = AdvectionOptions {
        h: 0.1,
        taylor_order: 2,
        error_box: vec![2.0, 2.0],
        ..Default::default()
    };

    // Initial front: disc of radius 1.5.
    let mut front = &Polynomial::norm_squared(2) - &Polynomial::constant(2, 2.25);
    println!("advecting a disc of radius 1.5 under a spiral sink (h = 0.1):");
    for k in 0..10 {
        front = adv.advect_mode(&front, 0, &opt);
        // Radius along the x-axis by bisection of the front polynomial.
        let mut lo = 0.0;
        let mut hi = 3.0;
        for _ in 0..50 {
            let mid = 0.5 * (lo + hi);
            if front.eval(&[mid, 0.0]) <= 0.0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let err = adv.estimate_taylor_error(&front, &opt);
        println!(
            "  step {:2}: x-radius {:.4} (exact e^{{-t}} law: {:.4}), taylor-err {:.1e}",
            k + 1,
            lo,
            1.5 * (-(k as f64 + 1.0) * 0.1f64).exp(),
            err
        );
    }

    // Piecewise system: same sink but two modes split at x = 0, with the
    // left mode slowed down — the merge must find a single quadratic wedge.
    let fast = vec![
        Polynomial::from_terms(2, &[(&[1, 0], -1.0), (&[0, 1], 2.0)]),
        Polynomial::from_terms(2, &[(&[1, 0], -2.0), (&[0, 1], -1.0)]),
    ];
    let slow: Vec<Polynomial> = fast.iter().map(|p| p.scale(0.5)).collect();
    let x = Polynomial::var(2, 0);
    let sys2 = HybridSystem::new(
        2,
        vec![
            Mode::new("right", fast).with_flow_set(vec![x.clone()]),
            Mode::new("left", slow).with_flow_set(vec![x.scale(-1.0)]),
        ],
        vec![],
    );
    let adv2 = Advection::new(&sys2);
    let mut opt2 = AdvectionOptions {
        h: 0.1,
        error_box: vec![2.0, 2.0],
        ..Default::default()
    };
    // Bound the merge domain (|x|,|y| ≤ 2).
    for i in 0..2 {
        let xi = Polynomial::var(2, i);
        opt2.bounding.push(&Polynomial::constant(2, 2.0) - &xi);
        opt2.bounding.push(&Polynomial::constant(2, 2.0) + &xi);
    }
    let p0 = &Polynomial::norm_squared(2) - &Polynomial::constant(2, 1.0);
    match adv2.step(&p0, &opt2) {
        Some(step) => println!(
            "\npiecewise sink, SOS merge: certified tightness γ = {:.4}, \
             taylor-err {:.1e}",
            step.gamma, step.taylor_error
        ),
        None => println!("\npiecewise sink: merge infeasible (raise degree or γ budget)"),
    }
}
