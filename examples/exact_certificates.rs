//! From floating-point certificates to machine-checked theorems: synthesise
//! the third-order PLL's Lyapunov certificate numerically, then upgrade its
//! positivity and decrease claims to exact rational proofs
//! (rounding → projection → exact PSD test, all big-integer arithmetic).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example exact_certificates
//! ```

use cppll::exact::prove_sos;
use cppll::pll::{PllModelBuilder, PllOrder, UncertaintySelection};
use cppll::poly::Polynomial;
use cppll::verify::exactify::{exactify_certificates, ExactifyOptions};
use cppll::verify::{LyapunovOptions, LyapunovSynthesizer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A toy warm-up: exact SOS proof of a strictly positive quartic.
    let p = Polynomial::from_terms(
        2,
        &[
            (&[4, 0], 1.0),
            (&[2, 2], 1.0),
            (&[0, 4], 1.0),
            (&[0, 0], 0.5),
        ],
    );
    let proof = prove_sos(&p, &Default::default())?;
    println!(
        "warm-up: {p} is SOS — exact Gram of dimension {}, audit: {}",
        proof.gram_dimension(),
        proof.is_valid_for(&p)
    );

    // The real thing: third-order PLL certificate (nominal, degree 4).
    let model = PllModelBuilder::new(PllOrder::Third)
        .with_uncertainty(UncertaintySelection::Nominal)
        .build();
    let certs =
        LyapunovSynthesizer::new(model.system()).synthesize_auto(&LyapunovOptions::degree(4))?;
    println!("\nnumeric certificate synthesised (degree 4, nominal parameters)");

    let t = std::time::Instant::now();
    let mut opt = ExactifyOptions::default();
    opt.exact.mult_half_degree = 2;
    match exactify_certificates(model.system(), &certs, &[1.0, 1.0, 2.2], &opt) {
        Ok(report) => {
            println!(
                "exactified in {:.1}s: {} positivity proof(s), {} decrease proof(s)",
                t.elapsed().as_secs_f64(),
                report.positivity.len(),
                report.decrease.len()
            );
            for d in &report.decrease {
                println!(
                    "  mode {} vertex {}: main Gram {}×{}, {} exact multipliers",
                    d.mode,
                    d.vertex,
                    d.proof.main.gram_dimension(),
                    d.proof.main.gram_dimension(),
                    d.proof.multipliers.len()
                );
            }
            for (mi, vi, why) in &report.unproven {
                println!(
                    "  mode {mi} vertex {vi}: NOT exactified ({why}) — this claim \
                     remains backed by the numeric certificate (Putinar degree wall \
                     on the thin saturated slab)"
                );
            }
            if report.complete() {
                println!("every stated inequality is now a machine-checked theorem");
            }
        }
        Err(e) => println!("exactification failed honestly: {e}"),
    }
    Ok(())
}
