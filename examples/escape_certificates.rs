//! Escape certificates (Proposition 1) as a standalone tool: prove that all
//! trajectories leave a compact set in finite time — and watch the synthesis
//! correctly *fail* when the set traps an equilibrium.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example escape_certificates
//! ```

use cppll::hybrid::{HybridSystem, Mode, Simulator};
use cppll::poly::Polynomial;
use cppll::verify::{EscapeOptions, EscapeSynthesizer};

fn main() {
    // An unstable spiral: trajectories wind outward from the origin and
    // must sweep through any compact annular window around it.
    let f = vec![
        Polynomial::from_terms(2, &[(&[0, 1], -1.0), (&[1, 0], 0.3)]),
        Polynomial::from_terms(2, &[(&[1, 0], 1.0), (&[0, 1], 0.3)]),
    ];
    let sys = HybridSystem::new(2, vec![Mode::new("spiral", f)], vec![]);
    let n2 = Polynomial::norm_squared(2);

    // Window: the annulus 1 ≤ ‖x‖² ≤ 9.
    let set = vec![
        &n2 - &Polynomial::constant(2, 1.0),
        &Polynomial::constant(2, 9.0) - &n2,
    ];
    match EscapeSynthesizer::new(&sys).synthesize(0, &set, &EscapeOptions::degree(4)) {
        Ok(cert) => {
            println!("escape certificate found for the annulus:");
            println!("  E = {}", cert.e);
            // Validate along a simulated trajectory: E must decrease while
            // inside the set, and the trajectory must leave it.
            let sim = Simulator::new(&sys).with_step(1e-3).with_thinning(50);
            let arc = sim.simulate(&[2.0, 0.0], 0, 30.0);
            let mut inside_count = 0;
            let mut left = false;
            let mut last_e = f64::INFINITY;
            let mut monotone = true;
            for s in arc.samples() {
                let inside = set.iter().all(|g| g.eval(&s.state) >= 0.0);
                if inside {
                    inside_count += 1;
                    let ev = cert.e.eval(&s.state);
                    if ev > last_e + 1e-9 {
                        monotone = false;
                    }
                    last_e = ev;
                } else if inside_count > 0 {
                    left = true;
                    break;
                }
            }
            println!(
                "  simulated check: E monotone while inside: {monotone}, \
                 trajectory left the set: {left}"
            );
        }
        Err(e) => println!("unexpected: {e}"),
    }

    // Now trap an equilibrium: ẋ = −x has the origin inside the disc — no
    // escape certificate can exist, and the synthesiser must say so.
    let stable = vec![
        Polynomial::var(2, 0).scale(-1.0),
        Polynomial::var(2, 1).scale(-1.0),
    ];
    let sys2 = HybridSystem::new(2, vec![Mode::new("sink", stable)], vec![]);
    let disc = vec![&Polynomial::constant(2, 4.0) - &n2];
    match EscapeSynthesizer::new(&sys2).synthesize(0, &disc, &EscapeOptions::degree(4)) {
        Ok(_) => println!("\nBUG: escape certificate for a set containing an equilibrium"),
        Err(e) => println!("\nsink inside the disc — synthesis correctly failed: {e}"),
    }
}
