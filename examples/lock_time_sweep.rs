//! Transient analysis: "time to locking" as a function of the initial
//! condition — the property the related work ([2] Althoff et al.,
//! [6] Lin–Li–Myers) verifies, here measured on both PLL models:
//!
//! * the averaged three-mode verification model, and
//! * the full cyclic PFD automaton (hundreds of discrete transitions).
//!
//! The sweep also reports the certified dwell-time bound of an escape
//! certificate for the saturated region — a deductive upper bound to set
//! against the simulated times.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example lock_time_sweep
//! ```

use cppll::hybrid::Simulator;
use cppll::pll::{cyclic_automaton, PllModelBuilder, PllOrder, TableOneParams};
use cppll::poly::Polynomial;
use cppll::sos::BoundOptions;
use cppll::verify::{EscapeOptions, EscapeSynthesizer};

/// First time the averaged model enters and stays in `‖x‖ ≤ tol`.
fn lock_time_averaged(
    model: &cppll::pll::VerificationModel,
    x0: &[f64],
    mode0: usize,
) -> Option<f64> {
    let sim = Simulator::new(model.system())
        .with_step(5e-3)
        .with_thinning(5);
    let arc = sim.simulate(x0, mode0, 400.0);
    let tol = 0.02;
    // Last exit from the ball, then report the following entry.
    let mut lock_at = None;
    for s in arc.samples() {
        let norm: f64 = s.state.iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm > tol {
            lock_at = None;
        } else if lock_at.is_none() {
            lock_at = Some(s.time.t);
        }
    }
    lock_at
}

fn main() {
    let model = PllModelBuilder::new(PllOrder::Third).build();

    println!("averaged model: lock time vs initial phase error (v = 0):");
    println!("  {:>8} {:>12}", "e(0)", "t_lock");
    for k in 0..8 {
        let e0 = 0.25 * (k as f64 + 1.0);
        let mode0 = if e0 <= 1.0 { 0 } else { 1 };
        match lock_time_averaged(&model, &[0.0, 0.0, e0], mode0) {
            Some(t) => println!("  {e0:>8.2} {t:>12.2}"),
            None => println!("  {e0:>8.2} {:>12}", "-"),
        }
    }

    println!("\naveraged model: lock time vs initial v2 offset (e = 0):");
    println!("  {:>8} {:>12}", "v2(0)", "t_lock");
    for k in 0..6 {
        let v0 = 0.2 * (k as f64 + 1.0);
        match lock_time_averaged(&model, &[0.0, v0, 0.0], 0) {
            Some(t) => println!("  {v0:>8.2} {t:>12.2}"),
            None => println!("  {v0:>8.2} {:>12}", "-"),
        }
    }

    // Ground truth: cyclic PFD automaton with explicit edges.
    println!("\ncyclic PFD automaton: lock time and edge count vs v2 offset:");
    println!("  {:>8} {:>12} {:>8}", "v2(0)", "t_settle", "edges");
    let cyc = cyclic_automaton(PllOrder::Third, &TableOneParams::third_order());
    for k in 0..4 {
        let v0 = 0.15 * (k as f64 + 1.0);
        let sim = Simulator::new(cyc.system())
            .with_step(2e-3)
            .with_thinning(20)
            .with_max_jumps(200_000);
        let arc = sim.simulate(&[0.0, v0, 0.0, 0.0], cyc.off_mode(), 250.0);
        // Settle: last time |v2| exceeded 0.02.
        let mut settle = 0.0;
        for s in arc.samples() {
            if s.state[1].abs() > 0.02 {
                settle = s.time.t;
            }
        }
        println!("  {v0:>8.2} {settle:>12.2} {:>8}", arc.jumps());
    }

    // Deductive counterpart: certified dwell-time bound for the saturated
    // region {1 ≤ e ≤ 2, |v| ≤ 1} from an escape certificate.
    println!("\ndeductive bound: maximum dwell time in the up-saturated region");
    let n = model.nstates();
    let e = Polynomial::var(n, model.phase_error_index());
    let mut set = vec![
        &e - &Polynomial::constant(n, 1.0),
        &Polynomial::constant(n, 2.0) - &e,
    ];
    for i in 0..2 {
        let xi = Polynomial::var(n, i);
        set.push(&Polynomial::constant(n, 1.0) - &(&xi * &xi));
    }
    match EscapeSynthesizer::new(model.system()).synthesize(
        model.up_mode(),
        &set,
        &EscapeOptions::degree(2),
    ) {
        Ok(cert) => {
            // Simulated dwell in the same compact set, worst case over a
            // few entries into it.
            let sim = Simulator::new(model.system())
                .with_step(1e-3)
                .with_thinning(1);
            let mut worst_dwell = 0.0f64;
            for &(a, b) in &[(0.0, 0.0), (-0.5, -0.5), (0.5, -0.9)] {
                let arc = sim.simulate(&[a, b, 1.95], model.up_mode(), 20.0);
                let mut entered: Option<f64> = None;
                for smp in arc.samples() {
                    let inside = set.iter().all(|g| g.eval(&smp.state) >= 0.0);
                    match (inside, entered) {
                        (true, None) => entered = Some(smp.time.t),
                        (false, Some(t0)) => {
                            worst_dwell = worst_dwell.max(smp.time.t - t0);
                            entered = None;
                        }
                        _ => {}
                    }
                }
            }
            match cert.dwell_time_bound(&set, &BoundOptions::default()) {
                Some(bound) => println!(
                    "  certified: every trajectory leaves the boxed saturated set \
                     within {bound:.2} time units (worst simulated dwell: {worst_dwell:.2} \
                     — the bound must be an upper envelope)"
                ),
                None => println!("  escape certificate found; range bound not certified"),
            }
        }
        Err(err) => println!("  no degree-2 escape certificate: {err}"),
    }
}
