//! The paper's second benchmark: inevitability of phase-locking for the
//! **fourth-order** charge-pump PLL (Table 1's right column) at the paper's
//! certificate degree 4, plus the escape-certificate fallback variant
//! (Algorithm 1, lines 13–18) that the paper needed for this benchmark.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example fourth_order_lock
//! ```
//!
//! Expect several minutes: the attractive-invariant SDP for four states at
//! degree 4 is the dominant cost — exactly the cost ordering the paper's
//! Table 2 reports (10021 s of their 2.6 GHz-i5 MATLAB time).

use cppll::pll::{PllModelBuilder, PllOrder};
use cppll::verify::{InevitabilityVerifier, PipelineOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = PllModelBuilder::new(PllOrder::Fourth).build();
    println!(
        "fourth-order CP PLL, scaled coefficients: {}",
        model.coeffs()
    );

    // Default run: bounded advection immerses the initial set into the
    // attractive invariant.
    let verifier = InevitabilityVerifier::for_pll(&model);
    let report = verifier.verify(&PipelineOptions::degree(4))?;
    println!("\n[default] verdict: {:?}", report.verdict);
    println!("[default] level c* = {:.4}", report.levels.level);
    println!(
        "[default] advection iterations: {}, escape certificates: {}",
        report.advection_iterations(),
        report.escape_certificates.len()
    );
    for t in &report.timings {
        println!("  {:<26} {:>8.2}s", t.name, t.seconds);
    }

    // Escape variant: advection is disabled so the leftover region must be
    // closed deductively, as in the paper's unsymmetric Fig. 5 situation.
    let mut opt = PipelineOptions::degree(4);
    opt.max_advection_iters = 0;
    let report = verifier.verify(&opt)?;
    println!("\n[escape variant] verdict: {:?}", report.verdict);
    println!(
        "[escape variant] escape certificates: {} (the paper needed 2)",
        report.escape_certificates.len()
    );
    for cert in &report.escape_certificates {
        println!(
            "  mode {}: E decreases at certified rate ε = {:.3}",
            cert.mode, cert.epsilon
        );
    }
    Ok(())
}
