//! Closes the loop between the deductive certificates and the actual
//! dynamics: synthesises the third-order certificates, then fires random
//! trajectories of the hybrid model (and of the *full cyclic PFD automaton*)
//! and checks the certified claims along them:
//!
//! * the Lyapunov certificate is monotone along flows,
//! * every trajectory enters the attractive invariant,
//! * every trajectory phase-locks,
//! * the cyclic automaton takes *hundreds* of discrete transitions to lock —
//!   the paper's motivation for avoiding reach-set methods.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example monte_carlo_validation
//! ```

use cppll::hybrid::Simulator;
use cppll::pll::{cyclic_automaton, PllModelBuilder, PllOrder, TableOneParams};
use cppll::verify::validation::Validator;
use cppll::verify::{InevitabilityVerifier, PipelineOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = PllModelBuilder::new(PllOrder::Third).build();
    let verifier = InevitabilityVerifier::for_pll(&model);
    let report = verifier.verify(&PipelineOptions::degree(4))?;
    println!("pipeline verdict: {:?}", report.verdict);

    // Monte-Carlo validation of the certificates on the averaged model.
    let validator = Validator::new(model.system());
    let bounds = vec![0.8, 0.8, 0.95];
    let certs = report
        .certificates
        .as_ref()
        .expect("verified run has certificates");
    let v = validator.validate(certs, &report.levels, &bounds, 50, 0xC0FFEE);
    println!(
        "\naveraged model, {} trajectories: monotone V: {}, reached AI: {}, locked: {}",
        v.trials, v.monotone, v.reached_ai, v.locked
    );
    println!(
        "worst certificate increase observed: {:.2e}",
        v.worst_increase
    );

    // Ground truth: the cyclic PFD automaton with explicit phases.
    let cyc = cyclic_automaton(PllOrder::Third, &TableOneParams::third_order());
    let sim = Simulator::new(cyc.system())
        .with_step(2e-3)
        .with_thinning(100)
        .with_max_jumps(100_000);
    let x0 = vec![0.0, 0.35, 0.0, 0.4];
    let arc = sim.simulate(&x0, cyc.off_mode(), 250.0);
    let xf = arc.final_state();
    println!(
        "\ncyclic PFD automaton from v2-offset 0.35: {} discrete transitions, \
         final v2 = {:+.4}, phase error = {:+.4}",
        arc.jumps(),
        xf[1],
        cyc.phase_error(xf)
    );
    println!(
        "(the averaged verification model abstracts those {} jumps into 3 modes)",
        arc.jumps()
    );
    Ok(())
}
