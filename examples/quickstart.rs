//! Quickstart: prove a polynomial is a sum of squares, synthesise a Lyapunov
//! certificate for a small system, and check a set inclusion — the three
//! primitive operations everything else builds on.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cppll::hybrid::{HybridSystem, Mode};
use cppll::poly::Polynomial;
use cppll::sos::{check_inclusion, InclusionOptions, SosOptions, SosProgram};
use cppll::verify::{LyapunovOptions, LyapunovSynthesizer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---------------------------------------------------------------
    // 1. SOS decomposition: p = x² − 2xy + 2y² + 1 is a sum of squares.
    // ---------------------------------------------------------------
    let p = Polynomial::from_terms(
        2,
        &[
            (&[2, 0], 1.0),
            (&[1, 1], -2.0),
            (&[0, 2], 2.0),
            (&[0, 0], 1.0),
        ],
    );
    let mut prog = SosProgram::new(2);
    let c = prog.require_sos(p.clone().into());
    let sol = prog.solve(&SosOptions::default())?;
    let dec = sol.sos_decomposition(c).expect("sos constraint has a Gram");
    println!("p(x, y) = {p}");
    println!(
        "  is a sum of {} squares, residual {:.2e}:",
        dec.squares().len(),
        dec.residual(&p)
    );
    for q in dec.squares() {
        println!("    ({q})²");
    }

    // ---------------------------------------------------------------
    // 2. Lyapunov certificate for ẋ = −x + y, ẏ = −y.
    // ---------------------------------------------------------------
    let f = vec![
        Polynomial::from_terms(2, &[(&[1, 0], -1.0), (&[0, 1], 1.0)]),
        Polynomial::from_terms(2, &[(&[0, 1], -1.0)]),
    ];
    let sys = HybridSystem::new(2, vec![Mode::new("linear", f)], vec![]);
    let certs = LyapunovSynthesizer::new(&sys).synthesize(&LyapunovOptions::degree(2))?;
    let v = certs.for_mode(0);
    println!("\nLyapunov certificate for the linear system:");
    println!("  V(x, y) = {v}");
    let (val, vdot) = certs.check_at(&sys, 0, &[1.0, -0.5], &[]);
    println!("  at (1, -0.5): V = {val:.4}, V̇ = {vdot:.4} (must be > 0 / < 0)");

    // ---------------------------------------------------------------
    // 3. Set inclusion via Lemma 1: the unit disc sits inside {V ≤ c}.
    // ---------------------------------------------------------------
    let disc = &Polynomial::norm_squared(2) - &Polynomial::constant(2, 1.0);
    let c_big = v.eval(&[2.0, 2.0]); // a level that surely engulfs the disc
    let level = v - &Polynomial::constant(2, c_big);
    let included = check_inclusion(&disc, &level, &[], &InclusionOptions::default());
    println!("\n{{‖x‖ ≤ 1}} ⊆ {{V ≤ {c_big:.2}}}: {included}");
    Ok(())
}
