//! Safety companion to inevitability: prove that a PLL already near lock
//! **never saturates its phase detector again** — the "retains its locking
//! state when disturbed" property from the paper's introduction, stated as
//! unreachability of the saturated modes.
//!
//! Two routes are shown:
//!
//! 1. direct barrier synthesis (Prajna–Jadbabaie, the paper's ref. [11]) —
//!    works on small systems, and
//! 2. the Lyapunov route: `B = V − c` where `V` is the inevitability
//!    pipeline's certificate and `c` is wedged between SOS-certified range
//!    bounds of `V` on the initial set and on the saturation boundary.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example barrier_safety
//! ```

use cppll::hybrid::Simulator;
use cppll::pll::{PllModelBuilder, PllOrder};
use cppll::poly::Polynomial;
use cppll::sos::{certified_lower_bound, certified_upper_bound, BoundOptions};
use cppll::verify::{BarrierOptions, BarrierSynthesizer, LyapunovOptions, LyapunovSynthesizer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = PllModelBuilder::new(PllOrder::Third).build();
    let n = model.nstates();
    let e_idx = model.phase_error_index();

    // Initial set: a neighbourhood of the lock point.
    let mut initial = Vec::new();
    for i in 0..n {
        let r = if i == e_idx { 0.2 } else { 0.1 };
        let xi = Polynomial::var(n, i);
        initial.push(&Polynomial::constant(n, r * r) - &(&xi * &xi));
    }
    // Unsafe: PFD saturation |e| ≥ 1.
    let e = Polynomial::var(n, e_idx);
    let unsafe_set = vec![&(&e * &e) - &Polynomial::constant(n, 1.0)];

    // Route 1: direct synthesis (may fail at low degrees — the honest
    // outcome is reported either way).
    println!("route 1: direct barrier synthesis at degree 2 …");
    match BarrierSynthesizer::new(model.system()).synthesize(
        &initial,
        &unsafe_set,
        &BarrierOptions::degree(2),
    ) {
        Ok(cert) => println!("  found: B = {}", cert.b),
        Err(e) => println!("  inconclusive at this degree ({e})"),
    }

    // Route 2: the Lyapunov certificate IS a barrier between its level sets.
    println!("\nroute 2: barrier from the inevitability certificate …");
    let certs =
        LyapunovSynthesizer::new(model.system()).synthesize_auto(&LyapunovOptions::degree(4))?;
    let v = certs.for_mode(model.tracking_mode()).clone();
    // Certified c_init ≥ max V on the initial box.
    let bound_opt = BoundOptions::default();
    let c_init = certified_upper_bound(&v, &initial, &bound_opt)
        .ok_or("upper bound on the initial set not certified")?;
    // Certified c_unsafe ≤ min V on the saturation boundary (e = ±1 slabs,
    // restricted to a generous voltage box so the domain is compact).
    let mut sat = unsafe_set.clone();
    for i in 0..n {
        let xi = Polynomial::var(n, i);
        sat.push(&Polynomial::constant(n, 25.0) - &(&xi * &xi));
    }
    let c_unsafe = certified_lower_bound(&v, &sat, &bound_opt)
        .ok_or("lower bound on the saturation region not certified")?;
    println!("  certified: V ≤ {c_init:.4} on the initial set");
    println!("  certified: V ≥ {c_unsafe:.4} on the saturation region (boxed)");
    if c_init < c_unsafe {
        let c = 0.5 * (c_init + c_unsafe);
        println!(
            "  ⇒ B = V − {c:.4} is a barrier: trajectories from the lock \
             neighbourhood never saturate the PFD (V̇ ≤ 0 by the P1 certificate)"
        );
        // Cross-check with simulation.
        let sim = Simulator::new(model.system())
            .with_step(1e-2)
            .with_thinning(10);
        let mut max_v = f64::NEG_INFINITY;
        let mut max_e = 0.0f64;
        for &(a, b, cc) in &[(0.1, -0.1, 0.2), (-0.1, 0.1, -0.2), (0.07, 0.07, 0.17)] {
            let arc = sim.simulate(&[a, b, cc], model.tracking_mode(), 100.0);
            for s in arc.samples() {
                max_v = max_v.max(v.eval(&s.state));
                max_e = max_e.max(s.state[e_idx].abs());
            }
        }
        println!(
            "  simulated check: max V along arcs = {max_v:.4} (≤ {c:.4}), \
             max |e| = {max_e:.4} (< 1)"
        );
    } else {
        println!("  bounds did not separate — inconclusive");
    }
    Ok(())
}
