//! The paper's headline experiment: verify inevitability of phase-locking
//! for the **third-order** charge-pump PLL (Table 1 parameters).
//!
//! Runs the full two-pronged methodology — multiple Lyapunov certificates,
//! level-curve maximisation, bounded advection, escape fallback — and prints
//! the verification report.
//!
//! Run with (degree 4 finishes in about a minute; pass `6` for the paper's
//! third-order degree):
//!
//! ```text
//! cargo run --release --example third_order_lock [degree]
//! ```

use cppll::pll::{PllModelBuilder, PllOrder};
use cppll::verify::{InevitabilityVerifier, PipelineOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let degree: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let model = PllModelBuilder::new(PllOrder::Third).build();
    println!(
        "third-order CP PLL, scaled coefficients: {}",
        model.coeffs()
    );
    println!(
        "modes: {:?}",
        model
            .system()
            .modes()
            .iter()
            .map(|m| m.name().to_string())
            .collect::<Vec<_>>()
    );

    let verifier = InevitabilityVerifier::for_pll(&model);
    let report = verifier.verify(&PipelineOptions::degree(degree))?;

    println!("\nverdict: {:?}", report.verdict);
    println!("attractive invariant level c* = {:.4}", report.levels.level);
    println!(
        "advection: {} iterations, included after {:?}",
        report.advection_iterations(),
        report.included_after()
    );
    for (k, e) in report.advection_trace.iter().enumerate() {
        println!(
            "  iter {:2}: taylor-error estimate {:.2e}, guard mismatch {:.2e}, included: {}",
            k + 1,
            e.taylor_error,
            e.guard_mismatch,
            e.included
        );
    }
    println!("escape certificates: {}", report.escape_certificates.len());
    println!("\nper-step timings (Table 2 of the paper):");
    for t in &report.timings {
        println!("  {:<26} {:>8.2}s", t.name, t.seconds);
    }
    println!("\nV (tracking mode, first terms):");
    let v = report
        .certificates
        .as_ref()
        .expect("verified run has certificates")
        .for_mode(model.tracking_mode());
    println!("  {v}");
    Ok(())
}
